// Package diskservice implements the RHODOS disk service (§4): one server
// per disk, managing blocks (8 KB) and fragments (2 KB) with the five
// service functions of the paper — allocate-block, free-block, flush-block,
// get-block and put-block.
//
// The semantics follow §4 exactly:
//
//   - Any operation on a set of contiguous blocks/fragments is accomplished
//     in one single reference to the disk.
//   - put-block can save data on its original location only, exclusively on
//     stable storage (the shadow-page case), or on both (the file-index-table
//     case); when stable storage is involved the caller chooses whether the
//     call returns before or after the stable copy is saved.
//   - get-block retrieves from main storage by default or from stable
//     storage on request.
//   - On a read the service fetches only the fragments the request needs,
//     then caches the rest of the same track to satisfy subsequent requests
//     (track read-ahead).
//   - Free space is managed with a bitmap plus the 64×64 contiguous-run
//     table (package freespace), both persisted: the bitmap on the disk
//     itself and mirrored to stable storage, since it is vital structural
//     information.
//
// Stable storage mirrors the disk's address space one-to-one, so "save this
// fragment on stable storage" needs no extra address translation — put-block
// at address A with StableOnly writes the stable pair at A.
package diskservice

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/cache"
	"repro/internal/device"
	"repro/internal/freespace"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/stable"
)

// Sizes re-exported for convenience of the layers above.
const (
	FragmentSize      = device.FragmentSize
	BlockSize         = device.BlockSize
	FragmentsPerBlock = device.FragmentsPerBlock
)

// Stability selects where put-block saves data (§4).
type Stability int

const (
	// MainOnly saves on the original location only.
	MainOnly Stability = iota + 1
	// StableOnly saves exclusively on stable storage — the shadow-page case.
	StableOnly
	// MainAndStable saves on the original location and on stable storage —
	// the file-index-table case.
	MainAndStable
)

// String implements fmt.Stringer.
func (s Stability) String() string {
	switch s {
	case MainOnly:
		return "main-only"
	case StableOnly:
		return "stable-only"
	case MainAndStable:
		return "main+stable"
	default:
		return fmt.Sprintf("Stability(%d)", int(s))
	}
}

// PutOptions control put-block.
type PutOptions struct {
	// Stability selects the destination; zero means MainOnly.
	Stability Stability
	// WaitStable, when a stable copy is requested, makes the call return only
	// after the stable copy is saved. When false the stable write is deferred
	// and the call returns immediately after the main-storage write (if any).
	WaitStable bool
}

// GetOptions control get-block.
type GetOptions struct {
	// FromStable retrieves the data from stable storage instead of main
	// storage.
	FromStable bool
	// NoReadAhead disables track read-ahead for this request (used by
	// experiment ablations).
	NoReadAhead bool
}

// Errors returned by the disk service.
var (
	ErrClosed = errors.New("diskservice: server closed")
	// ErrNotFormatted reports a mount of a disk with no valid superblock.
	ErrNotFormatted = errors.New("diskservice: disk not formatted")
)

const superMagic = 0x52484F44 // "RHOD"

// Config configures a Server.
type Config struct {
	// DiskID identifies this disk within the facility.
	DiskID int
	// Disk is the drive this server owns. Required.
	Disk *device.Disk
	// Stable is the stable store mirroring this disk's address space; its
	// capacity must equal the disk's. Required.
	Stable *stable.Store
	// Metrics receives operation counters. Optional.
	Metrics *metrics.Set
	// TrackCacheTracks is the number of tracks the read-ahead cache holds;
	// defaults to 16.
	TrackCacheTracks int
	// DisableReadAhead turns the track cache off entirely (ablation E5).
	DisableReadAhead bool
	// Obs receives per-request spans/latency observations and the disk's
	// queue-depth gauge. Optional.
	Obs *obs.Recorder
}

// Server is a disk server. It is safe for concurrent use.
type Server struct {
	id        int
	disk      *device.Disk
	stable    *stable.Store
	met       *metrics.Set
	readAhead bool
	obsRec    *obs.Recorder
	queue     *obs.Gauge // in-flight get/put requests on this disk

	mu     sync.Mutex
	closed bool
	fsmap  *freespace.Map

	trackCache *cache.Cache[int] // track number -> track bytes

	// metaFrags is the size of the reserved metadata region (superblock +
	// bitmap) at the start of the disk.
	metaFrags int
}

// Format initializes a fresh disk: writes a superblock, reserves the
// metadata region, and persists an empty bitmap to both the disk and stable
// storage. It returns a mounted Server.
func Format(cfg Config) (*Server, error) {
	s, err := newServer(cfg)
	if err != nil {
		return nil, err
	}
	capacity := cfg.Disk.Geometry().Capacity()
	s.metaFrags = 1 + bitmapFragments(capacity)
	if err := s.fsmap.AllocateAt(0, s.metaFrags); err != nil {
		return nil, fmt.Errorf("diskservice: reserving metadata region: %w", err)
	}
	if err := s.persistMetadataLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// Mount opens a previously formatted disk, loading the bitmap (and, if the
// on-disk copy is unreadable, recovering it from stable storage).
func Mount(cfg Config) (*Server, error) {
	s, err := newServer(cfg)
	if err != nil {
		return nil, err
	}
	capacity := cfg.Disk.Geometry().Capacity()
	s.metaFrags = 1 + bitmapFragments(capacity)

	super, err := s.readMeta(0, 1)
	if err != nil {
		return nil, fmt.Errorf("diskservice: reading superblock: %w", err)
	}
	if binary.BigEndian.Uint32(super) != superMagic {
		return nil, ErrNotFormatted
	}
	if got := int(binary.BigEndian.Uint64(super[4:])); got != capacity {
		return nil, fmt.Errorf("diskservice: superblock capacity %d does not match disk %d", got, capacity)
	}
	raw, err := s.readMeta(1, bitmapFragments(capacity))
	if err != nil {
		return nil, fmt.Errorf("diskservice: reading bitmap: %w", err)
	}
	words := make([]uint64, (capacity+63)/64)
	for i := range words {
		words[i] = binary.BigEndian.Uint64(raw[i*8:])
	}
	if err := s.fsmap.LoadBitmap(words); err != nil {
		return nil, fmt.Errorf("diskservice: loading bitmap: %w", err)
	}
	return s, nil
}

// readMeta reads metadata fragments from the disk, falling back to the
// stable mirror on a media error.
func (s *Server) readMeta(start, n int) ([]byte, error) {
	data, err := s.disk.ReadFragments(start, n)
	if err == nil {
		return data, nil
	}
	if !errors.Is(err, device.ErrMediaError) {
		return nil, err
	}
	return s.stable.Read(start, n)
}

func newServer(cfg Config) (*Server, error) {
	if cfg.Disk == nil {
		return nil, errors.New("diskservice: nil disk")
	}
	if cfg.Stable == nil {
		return nil, errors.New("diskservice: nil stable store")
	}
	capacity := cfg.Disk.Geometry().Capacity()
	if cfg.Stable.Capacity() != capacity {
		return nil, fmt.Errorf("diskservice: stable capacity %d does not mirror disk capacity %d",
			cfg.Stable.Capacity(), capacity)
	}
	fsmap, err := freespace.NewMap(capacity)
	if err != nil {
		return nil, err
	}
	tracks := cfg.TrackCacheTracks
	if tracks <= 0 {
		tracks = 16
	}
	tc, err := cache.New(cache.Config[int]{
		Capacity:    tracks,
		Policy:      cache.DelayedWrite, // the track cache is read-only; never dirty
		Metrics:     cfg.Metrics,
		HitCounter:  metrics.TrackCacheHit,
		MissCounter: metrics.TrackCacheMiss,
	})
	if err != nil {
		return nil, err
	}
	return &Server{
		id:         cfg.DiskID,
		disk:       cfg.Disk,
		stable:     cfg.Stable,
		met:        cfg.Metrics,
		readAhead:  !cfg.DisableReadAhead,
		obsRec:     cfg.Obs,
		queue:      cfg.Obs.Gauge(fmt.Sprintf("disk.%d.queue_depth", cfg.DiskID)),
		fsmap:      fsmap,
		trackCache: tc,
	}, nil
}

func bitmapFragments(capacity int) int {
	bytes := ((capacity + 63) / 64) * 8
	return (bytes + FragmentSize - 1) / FragmentSize
}

// ID returns the disk identifier.
func (s *Server) ID() int { return s.id }

// Capacity returns the disk size in fragments.
func (s *Server) Capacity() int { return s.disk.Geometry().Capacity() }

// FreeFragments returns the number of free fragments.
func (s *Server) FreeFragments() int { return s.fsmap.FreeCount() }

// LargestRun returns the longest contiguous free run, in fragments.
func (s *Server) LargestRun() int { return s.fsmap.LargestRun() }

// FreeSpaceStats exposes the allocator's work counters (experiment E4).
func (s *Server) FreeSpaceStats() freespace.Stats { return s.fsmap.Stats() }

func (s *Server) checkOpen() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return nil
}

// AllocateFragments claims n contiguous fragments and returns the address of
// the first (allocate-block for fragment-granularity callers, used for file
// index tables and other structural data).
func (s *Server) AllocateFragments(n int) (int, error) {
	if err := s.checkOpen(); err != nil {
		return 0, err
	}
	return s.fsmap.Allocate(n)
}

// AllocateFragmentsNear is AllocateFragments preferring addresses close to
// hint — used to place a file's first data block next to its FIT (§5).
func (s *Server) AllocateFragmentsNear(hint, n int) (int, error) {
	if err := s.checkOpen(); err != nil {
		return 0, err
	}
	return s.fsmap.AllocateNear(hint, n)
}

// AllocateBlocks claims n contiguous blocks (4n fragments) and returns the
// fragment address of the first — the paper's allocate-block.
func (s *Server) AllocateBlocks(n int) (int, error) {
	return s.AllocateFragments(n * FragmentsPerBlock)
}

// AllocateBlocksNear is AllocateBlocks with a placement hint.
func (s *Server) AllocateBlocksNear(hint, n int) (int, error) {
	return s.AllocateFragmentsNear(hint, n*FragmentsPerBlock)
}

// ResetBitmap discards all allocations except the metadata region. It is
// used by the file service's mount-time reconstruction: after a crash the
// persisted bitmap may be stale, so the authoritative allocation state is
// rebuilt from the persisted file index tables, exactly as the paper's
// "initialization and subsequent updation of this array is carried out by
// scanning the bitmap" extends to rebuilding the bitmap from the structures
// it protects.
func (s *Server) ResetBitmap() error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	capacity := s.Capacity()
	fsmap, err := freespace.NewMap(capacity)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.fsmap = fsmap
	meta := s.metaFrags
	s.mu.Unlock()
	if meta > 0 {
		return s.fsmap.AllocateAt(0, meta)
	}
	return nil
}

// AllocateAt claims the exact span [addr, addr+n) — used by layers above
// for fixed structures like the file service's superfragment.
func (s *Server) AllocateAt(addr, n int) error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	return s.fsmap.AllocateAt(addr, n)
}

// AllocateFirstFit is the baseline allocator (experiment E4 ablation).
func (s *Server) AllocateFirstFit(n int) (int, error) {
	if err := s.checkOpen(); err != nil {
		return 0, err
	}
	return s.fsmap.AllocateFirstFit(n)
}

// Free returns n fragments starting at addr to the free pool — the paper's
// free-block, for any mix of blocks and fragments.
func (s *Server) Free(addr, n int) error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	return s.fsmap.Free(addr, n)
}

// Get is the paper's get-block: it reads n contiguous fragments starting at
// addr in one disk reference. By default data comes from main storage, with
// the track read-ahead cache consulted first; with FromStable it comes from
// the stable mirror.
func (s *Server) Get(addr, n int, opts GetOptions) ([]byte, error) {
	return s.GetCtx(context.Background(), addr, n, opts)
}

// GetCtx is Get carrying a trace context: the request is bracketed by a
// diskservice-layer span (or histogram observation) and counts against this
// disk's queue-depth gauge.
func (s *Server) GetCtx(ctx context.Context, addr, n int, opts GetOptions) ([]byte, error) {
	s.queue.Inc()
	ctx, op := s.obsRec.StartOp(ctx, obs.LayerDiskService, "get")
	data, err := s.get(ctx, addr, n, opts)
	op.Span().AddBytes(len(data))
	op.End(err)
	s.queue.Dec()
	return data, err
}

func (s *Server) get(ctx context.Context, addr, n int, opts GetOptions) ([]byte, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	if opts.FromStable {
		return s.stable.Read(addr, n)
	}
	geom := s.disk.Geometry()
	if n <= 0 || addr < 0 || addr+n > geom.Capacity() {
		return nil, fmt.Errorf("%w: [%d,%d)", device.ErrOutOfRange, addr, addr+n)
	}
	if !s.readAhead || opts.NoReadAhead {
		return s.disk.ReadFragmentsCtx(ctx, addr, n)
	}
	firstTrack := geom.Track(addr)
	lastTrack := geom.Track(addr + n - 1)
	if firstTrack != lastTrack {
		// Multi-track transfers bypass the track cache: they are one disk
		// reference already and would otherwise flood the cache.
		return s.disk.ReadFragmentsCtx(ctx, addr, n)
	}
	off := (addr - geom.TrackStart(firstTrack)) * FragmentSize
	if data, ok := s.trackCache.Get(firstTrack); ok {
		return data[off : off+n*FragmentSize : off+n*FragmentSize], nil
	}
	// Miss: fetch the whole track in one reference, serve the requested
	// fragments, cache the rest (§4).
	trackData, _, err := s.disk.ReadTrackCtx(ctx, addr)
	if err != nil {
		return nil, err
	}
	if err := s.trackCache.Put(firstTrack, trackData, false); err != nil {
		return nil, err
	}
	out := make([]byte, n*FragmentSize)
	copy(out, trackData[off:])
	return out, nil
}

// Put is the paper's put-block: it writes data (a whole number of fragments)
// at addr in one disk reference per destination. opts.Stability selects main
// storage, stable storage, or both; opts.WaitStable selects whether the call
// waits for the stable copy.
func (s *Server) Put(addr int, data []byte, opts PutOptions) error {
	return s.PutCtx(context.Background(), addr, data, opts)
}

// PutCtx is Put carrying a trace context (see GetCtx).
func (s *Server) PutCtx(ctx context.Context, addr int, data []byte, opts PutOptions) error {
	s.queue.Inc()
	ctx, op := s.obsRec.StartOp(ctx, obs.LayerDiskService, "put")
	op.Span().AddBytes(len(data))
	err := s.put(ctx, addr, data, opts)
	op.End(err)
	s.queue.Dec()
	return err
}

func (s *Server) put(ctx context.Context, addr int, data []byte, opts PutOptions) error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	st := opts.Stability
	if st == 0 {
		st = MainOnly
	}
	if st == MainOnly || st == MainAndStable {
		if err := s.disk.WriteFragmentsCtx(ctx, addr, data); err != nil {
			return err
		}
		s.updateTrackCache(addr, data)
	}
	if st == StableOnly || st == MainAndStable {
		if opts.WaitStable {
			if err := s.stable.Write(addr, data); err != nil {
				return err
			}
		} else {
			if err := s.stable.WriteDeferred(addr, data); err != nil {
				return err
			}
		}
	}
	return nil
}

// updateTrackCache keeps cached tracks coherent with a main-storage write.
func (s *Server) updateTrackCache(addr int, data []byte) {
	geom := s.disk.Geometry()
	n := len(data) / FragmentSize
	for frag := addr; frag < addr+n; {
		track := geom.Track(frag)
		trackStart := geom.TrackStart(track)
		trackEnd := trackStart + geom.FragmentsPerTrack
		spanEnd := addr + n
		if spanEnd > trackEnd {
			spanEnd = trackEnd
		}
		if cached, ok := s.trackCache.Get(track); ok {
			copy(cached[(frag-trackStart)*FragmentSize:], data[(frag-addr)*FragmentSize:(spanEnd-addr)*FragmentSize])
			// Re-put clean: the platter already has the data.
			if err := s.trackCache.Put(track, cached, false); err != nil {
				s.trackCache.Invalidate(track)
			}
		}
		frag = spanEnd
	}
}

// Flush is the paper's flush-block: it makes all buffered state durable —
// deferred stable writes are drained and the bitmap is persisted to the disk
// and its stable mirror.
func (s *Server) Flush() error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.persistMetadataLocked()
}

func (s *Server) persistMetadataLocked() error {
	super := make([]byte, FragmentSize)
	binary.BigEndian.PutUint32(super, superMagic)
	binary.BigEndian.PutUint64(super[4:], uint64(s.Capacity()))
	words := s.fsmap.Bitmap()
	raw := make([]byte, bitmapFragments(s.Capacity())*FragmentSize)
	for i, w := range words {
		binary.BigEndian.PutUint64(raw[i*8:], w)
	}
	// Vital structural information: original location and stable storage
	// (the file-index-table flavour of put-block).
	if err := s.disk.WriteFragments(0, super); err != nil {
		return fmt.Errorf("diskservice: writing superblock: %w", err)
	}
	if err := s.disk.WriteFragments(1, raw); err != nil {
		return fmt.Errorf("diskservice: writing bitmap: %w", err)
	}
	if err := s.stable.Write(0, super); err != nil {
		return err
	}
	if err := s.stable.Write(1, raw); err != nil {
		return err
	}
	if err := s.stable.Flush(); err != nil {
		return err
	}
	return nil
}

// InvalidateCache empties the track cache (used by experiments to force cold
// reads).
func (s *Server) InvalidateCache() { s.trackCache.InvalidateAll() }

// Close flushes metadata and marks the server closed. The stable store is
// not closed; its owner closes it.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	err := s.persistMetadataLocked()
	s.closed = true
	s.mu.Unlock()
	return err
}

// MetadataFragments returns the size of the reserved metadata region, i.e.
// the first allocatable address (diagnostic; used by fsck and tests).
func (s *Server) MetadataFragments() int { return s.metaFrags }
