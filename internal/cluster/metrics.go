package cluster

import "repro/internal/replication"

// Named metrics the cluster layer records on the recorders handed in via
// ServiceConfig.Obs / RouterConfig.Obs / LockClient.SetObs. Counters are
// gauges incremented per occurrence; *_ns names are latency histograms in
// nanoseconds; heartbeat_gap_ns is a gauge holding the most recent observed
// silence on a backup's watchdog.
const (
	// Server side (ServiceConfig.Obs).
	MetricReplLagNS        = "cluster.repl.lag_ns"           // hist: group-commit wait for backup confirmation
	MetricReplHeartbeatGap = "cluster.repl.heartbeat_gap_ns" // gauge: backup watchdog's latest primary-silence reading
	MetricLeaseGrants      = "cluster.lease.grants"          // counter: lock leases minted
	MetricLeaseRenews      = "cluster.lease.renews"          // counter: successful lease renewals
	MetricLeaseReleases    = "cluster.lease.releases"        // counter: explicit lease releases
	MetricLeaseExpired     = "cluster.lease.expired"         // counter: leases broken by the sweeper

	// Client side (RouterConfig.Obs / LockClient.SetObs).
	MetricRouterRedirects  = "cluster.router.redirects"      // counter: not-mine redirects followed
	MetricRouterMapRefresh = "cluster.router.map_refresh_ns" // hist: shard-map refresh round trips
	MetricRouterRebinds    = "cluster.router.rebinds"        // counter: failover rebinds to a backup address
	MetricLeaseRenewNS     = "cluster.lease.renew_ns"        // hist: lock-lease renew round trips
)

// MetricNames lists every metric name the cluster and replication layers
// record, for the audit test and the fleet scraper's documentation.
var MetricNames = []string{
	MetricReplLagNS,
	MetricReplHeartbeatGap,
	MetricLeaseGrants,
	MetricLeaseRenews,
	MetricLeaseReleases,
	MetricLeaseExpired,
	MetricRouterRedirects,
	MetricRouterMapRefresh,
	MetricRouterRebinds,
	MetricLeaseRenewNS,
	replication.MetricShipBatchRecords,
	replication.MetricShipBatchBytes,
	replication.MetricShipNS,
	replication.MetricApplyNS,
}
