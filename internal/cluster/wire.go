package cluster

// Cluster control-plane methods and their payloads. These are new with the
// multi-node subsystem, so unlike rpcfs there is no gob legacy: payloads are
// always the fixed-layout binary encoding (big-endian integers, u32-length-
// prefixed strings), independent of the transport's wire format.

import (
	"encoding/binary"
	"fmt"
)

// Cluster method names.
const (
	// MMap serves the shard map (no arguments, Map reply).
	MMap = "cluster.map"
	// MLockAcquire tries to acquire one lock for a leased transaction
	// (LockAcquireArgs, LockReply). The try is non-blocking on the server —
	// a blocked acquire would pin a server worker — so clients poll.
	MLockAcquire = "cluster.lock.acquire"
	// MLockRenew renews a transaction's lease (LockTxnArgs, empty reply;
	// a lost lease is a service error).
	MLockRenew = "cluster.lock.renew"
	// MLockRelease releases all of a transaction's locks and its lease
	// (LockTxnArgs, empty reply).
	MLockRelease = "cluster.lock.release"
)

// LockAcquireArgs asks for one lock on behalf of transaction Txn, leased to
// client Client. Level/Mode are internal/lock enums; File/Off/Len name the
// data item per lock.ItemID.
type LockAcquireArgs struct {
	Client uint64
	Txn    uint64
	PID    int64
	Level  uint8
	Mode   uint8
	File   uint64
	Off    uint64
	Len    uint64
}

// LockTxnArgs names a leased transaction.
type LockTxnArgs struct {
	Client uint64
	Txn    uint64
}

// LockReply reports whether a non-blocking acquire was granted.
type LockReply struct {
	Granted bool
}

const lockAcquireLen = 8 + 8 + 8 + 1 + 1 + 8 + 8 + 8

func appendLockAcquire(dst []byte, a LockAcquireArgs) []byte {
	dst = binary.BigEndian.AppendUint64(dst, a.Client)
	dst = binary.BigEndian.AppendUint64(dst, a.Txn)
	dst = binary.BigEndian.AppendUint64(dst, uint64(a.PID))
	dst = append(dst, a.Level, a.Mode)
	dst = binary.BigEndian.AppendUint64(dst, a.File)
	dst = binary.BigEndian.AppendUint64(dst, a.Off)
	return binary.BigEndian.AppendUint64(dst, a.Len)
}

func decodeLockAcquire(data []byte) (LockAcquireArgs, error) {
	var a LockAcquireArgs
	if len(data) != lockAcquireLen {
		return a, fmt.Errorf("cluster: lock acquire payload %d bytes, want %d", len(data), lockAcquireLen)
	}
	a.Client = binary.BigEndian.Uint64(data[0:])
	a.Txn = binary.BigEndian.Uint64(data[8:])
	a.PID = int64(binary.BigEndian.Uint64(data[16:]))
	a.Level = data[24]
	a.Mode = data[25]
	a.File = binary.BigEndian.Uint64(data[26:])
	a.Off = binary.BigEndian.Uint64(data[34:])
	a.Len = binary.BigEndian.Uint64(data[42:])
	return a, nil
}

const lockTxnLen = 8 + 8

func appendLockTxn(dst []byte, a LockTxnArgs) []byte {
	dst = binary.BigEndian.AppendUint64(dst, a.Client)
	return binary.BigEndian.AppendUint64(dst, a.Txn)
}

func decodeLockTxn(data []byte) (LockTxnArgs, error) {
	var a LockTxnArgs
	if len(data) != lockTxnLen {
		return a, fmt.Errorf("cluster: lock txn payload %d bytes, want %d", len(data), lockTxnLen)
	}
	a.Client = binary.BigEndian.Uint64(data[0:])
	a.Txn = binary.BigEndian.Uint64(data[8:])
	return a, nil
}

func appendLockReply(dst []byte, r LockReply) []byte {
	b := byte(0)
	if r.Granted {
		b = 1
	}
	return append(dst, b)
}

func decodeLockReply(data []byte) (LockReply, error) {
	if len(data) != 1 {
		return LockReply{}, fmt.Errorf("cluster: lock reply payload %d bytes, want 1", len(data))
	}
	return LockReply{Granted: data[0] == 1}, nil
}

func mapSize(m Map) int {
	n := 8 + 4
	for _, e := range m.Endpoints {
		n += 4 + len(e)
	}
	n += 4
	for _, b := range m.Backups {
		n += 4 + len(b)
	}
	return n
}

func appendMap(dst []byte, m Map) []byte {
	dst = binary.BigEndian.AppendUint64(dst, m.Version)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Endpoints)))
	for _, e := range m.Endpoints {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(e)))
		dst = append(dst, e...)
	}
	// Backups section, appended after the endpoints so a legacy decoder that
	// stops there still reads a valid (backup-less) map.
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Backups)))
	for _, b := range m.Backups {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
		dst = append(dst, b...)
	}
	return dst
}

func decodeMap(data []byte) (Map, error) {
	var m Map
	if len(data) < 12 {
		return m, fmt.Errorf("cluster: map payload %d bytes, want >= 12", len(data))
	}
	m.Version = binary.BigEndian.Uint64(data)
	n := int(binary.BigEndian.Uint32(data[8:]))
	off := 12
	if n > len(data) { // sanity: each endpoint needs at least its length word
		return m, fmt.Errorf("cluster: map endpoint count %d exceeds payload", n)
	}
	m.Endpoints = make([]string, n)
	for i := range m.Endpoints {
		if off+4 > len(data) {
			return m, fmt.Errorf("cluster: truncated map payload")
		}
		l := int(binary.BigEndian.Uint32(data[off:]))
		off += 4
		if off+l > len(data) {
			return m, fmt.Errorf("cluster: truncated map payload")
		}
		m.Endpoints[i] = string(data[off : off+l])
		off += l
	}
	if off == len(data) {
		return m, nil // legacy payload: no backups section
	}
	if off+4 > len(data) {
		return m, fmt.Errorf("cluster: truncated map payload")
	}
	nb := int(binary.BigEndian.Uint32(data[off:]))
	off += 4
	if nb > len(data) {
		return m, fmt.Errorf("cluster: map backup count %d exceeds payload", nb)
	}
	m.Backups = make([]string, nb)
	for i := range m.Backups {
		if off+4 > len(data) {
			return m, fmt.Errorf("cluster: truncated map payload")
		}
		l := int(binary.BigEndian.Uint32(data[off:]))
		off += 4
		if off+l > len(data) {
			return m, fmt.Errorf("cluster: truncated map payload")
		}
		m.Backups[i] = string(data[off : off+l])
		off += l
	}
	return m, nil
}
