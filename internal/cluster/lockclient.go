package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/lock"
	"repro/internal/obs"
	"repro/internal/rpc"
)

// PtLeaseRenew is the fault point on the client's lease renewal path: an
// armed error simulates a partition (the renewal never reaches the server),
// a delay simulates a slow link.
var PtLeaseRenew = fault.Register("cluster.lease.renew")

// LockClient is the client half of the network lock service: acquisitions
// poll the server's non-blocking try (the server never parks a worker on a
// blocked lock), and a background renewer keeps the client's transactions
// leased. If the client dies or is partitioned the renewals stop, the
// server's sweeper breaks the transactions' locks, and competitors proceed.
type LockClient struct {
	c        *rpc.Client
	clientID uint64
	inj      *fault.Injector
	rec      atomic.Pointer[obs.Recorder]

	mu   sync.Mutex
	txns map[uint64]bool

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// Acquire backoff bounds: the first retry after a denied try waits
// acquireBackoffMin, doubling up to acquireBackoffMax.
const (
	acquireBackoffMin = time.Millisecond
	acquireBackoffMax = 50 * time.Millisecond
)

// NewLockClient starts a lock client over an rpc connection (share the
// router's via Router.Lock). ttl is the server's lease duration; renewals
// go out every ttl/3. inj is consulted at PtLeaseRenew (optional).
func NewLockClient(c *rpc.Client, clientID uint64, ttl time.Duration, inj *fault.Injector) *LockClient {
	l := &LockClient{
		c:        c,
		clientID: clientID,
		inj:      inj,
		txns:     make(map[uint64]bool),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	every := ttl / 3
	if every <= 0 {
		every = time.Millisecond
	}
	go l.renewLoop(every)
	return l
}

// SetObs attaches a recorder after construction (the renew loop is already
// running, hence the atomic): renew round trips land in the
// cluster.lease.renew_ns histogram.
func (l *LockClient) SetObs(r *obs.Recorder) { l.rec.Store(r) }

// Close stops the background renewer. It does not release held locks —
// that is exactly what the server's lease sweeper is for.
func (l *LockClient) Close() {
	l.stopOnce.Do(func() { close(l.stop) })
	<-l.done
}

// Acquire obtains one lock for txn, polling the server's non-blocking try
// with exponential backoff until granted, the context expires, or the
// server reports the transaction broken.
func (l *LockClient) Acquire(ctx context.Context, txn lock.TxnID, pid int, level lock.Level, item lock.ItemID, mode lock.Mode) error {
	args := LockAcquireArgs{
		Client: l.clientID,
		Txn:    uint64(txn),
		PID:    int64(pid),
		Level:  uint8(level),
		Mode:   uint8(mode),
		File:   item.File,
		Off:    item.Offset,
		Len:    item.Length,
	}
	backoff := acquireBackoffMin
	for {
		// An already-canceled context must not issue a network call; the
		// mid-loop select alone only observes cancellation after a denied
		// try's backoff.
		if err := ctx.Err(); err != nil {
			return err
		}
		body := appendLockAcquire(rpc.Buffer(lockAcquireLen)[:0], args)
		out, err := l.c.Call(MLockAcquire, body)
		rpc.Recycle(body)
		if err != nil {
			l.c.ReleaseBody(out)
			return err
		}
		reply, err := decodeLockReply(out)
		l.c.ReleaseBody(out)
		if err != nil {
			return err
		}
		if reply.Granted {
			l.mu.Lock()
			l.txns[uint64(txn)] = true
			l.mu.Unlock()
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < acquireBackoffMax {
			backoff *= 2
		}
	}
}

// Release drops all of txn's locks and its lease.
func (l *LockClient) Release(txn lock.TxnID) error {
	l.mu.Lock()
	delete(l.txns, uint64(txn))
	l.mu.Unlock()
	body := appendLockTxn(rpc.Buffer(lockTxnLen)[:0], LockTxnArgs{Client: l.clientID, Txn: uint64(txn)})
	out, err := l.c.Call(MLockRelease, body)
	rpc.Recycle(body)
	l.c.ReleaseBody(out)
	return err
}

// StopRenewing drops txn from the renewal set without releasing it: the
// lease then expires server-side as if this client had died (test hook).
func (l *LockClient) StopRenewing(txn lock.TxnID) {
	l.mu.Lock()
	delete(l.txns, uint64(txn))
	l.mu.Unlock()
}

// renewLoop renews every tracked transaction's lease. A transaction whose
// lease the server reports lost is dropped from the set — its locks are
// already broken and re-renewing would never succeed.
func (l *LockClient) renewLoop(every time.Duration) {
	defer close(l.done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
		}
		if err := l.inj.Err(PtLeaseRenew); err != nil {
			continue // partitioned: the renewal never reaches the server
		}
		l.mu.Lock()
		txns := make([]uint64, 0, len(l.txns))
		for txn := range l.txns {
			txns = append(txns, txn)
		}
		l.mu.Unlock()
		for _, txn := range txns {
			body := appendLockTxn(rpc.Buffer(lockTxnLen)[:0], LockTxnArgs{Client: l.clientID, Txn: txn})
			t0 := time.Now()
			out, err := l.c.Call(MLockRenew, body)
			l.rec.Load().ValueHist(MetricLeaseRenewNS).Record(time.Since(t0))
			rpc.Recycle(body)
			l.c.ReleaseBody(out)
			if err != nil && IsLeaseLost(err) {
				l.mu.Lock()
				delete(l.txns, txn)
				l.mu.Unlock()
			}
		}
	}
}
