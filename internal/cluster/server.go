package cluster

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/lock"
	"repro/internal/rpc"
	"repro/internal/rpcfs"
)

// PtLeaseSweep is the fault point on the server's lease sweeper, hit once
// per sweep that breaks at least one lease.
var PtLeaseSweep = fault.Register("cluster.lease.sweep")

// errLeaseLost is the service error a renewal (or release) gets back once
// the lease has expired and been swept; the marker string is what
// IsLeaseLost matches after the error has crossed the wire.
const leaseLostMarker = "cluster: lease lost"

// IsLeaseLost reports whether a remote error means the transaction's lease
// expired server-side (its locks have been broken).
func IsLeaseLost(err error) bool {
	return err != nil && strings.Contains(err.Error(), leaseLostMarker)
}

// DefaultLeaseTTL is the lease duration when ServiceConfig leaves it zero.
const DefaultLeaseTTL = 2 * time.Second

// ServiceConfig configures one shard's cluster service.
type ServiceConfig struct {
	// Shard is this server's shard index in Map.Endpoints.
	Shard int
	// Map is the cluster map this server serves to clients. Required:
	// len(Map.Endpoints) is the shard count the ownership check uses.
	Map Map
	// Inner is the wrapped rpcfs server handler executing owned requests.
	// Required.
	Inner rpc.Handler
	// Wire is the payload codec of the inner rpcfs server, needed to decode
	// path-addressed requests for the ownership check.
	Wire rpc.WireFormat
	// Locks enables the network lock service; nil serves file/name methods
	// only.
	Locks *lock.Manager
	// LeaseTTL is the client lease duration (DefaultLeaseTTL when zero).
	LeaseTTL time.Duration
	// SweepEvery is the lease sweeper period (LeaseTTL/4 when zero).
	SweepEvery time.Duration
	// Now is the lease clock; nil means time.Now.
	Now func() time.Time
	// Fault is consulted at PtLeaseSweep. Optional.
	Fault *fault.Injector
}

// Service is the per-shard server wrapper: it owns a slice of the naming
// namespace, redirects path-addressed requests for names it does not own,
// serves the shard map, and runs the leased network lock service.
type Service struct {
	shard   int
	shards  int
	mapBody []byte // pre-encoded shard map reply
	version uint64
	inner   rpc.Handler
	wire    rpc.WireFormat
	locks   *lock.Manager
	leases  *LeaseTable
	inj     *fault.Injector

	stop     chan struct{}
	wg       sync.WaitGroup
	stopOnce sync.Once
}

// NewService builds the shard service and starts its lease sweeper (when a
// lock manager is attached). Close stops the sweeper.
func NewService(cfg ServiceConfig) (*Service, error) {
	if cfg.Inner == nil {
		return nil, errors.New("cluster: nil inner handler")
	}
	if cfg.Map.Shards() == 0 {
		return nil, errors.New("cluster: empty shard map")
	}
	if cfg.Shard < 0 || cfg.Shard >= cfg.Map.Shards() {
		return nil, fmt.Errorf("cluster: shard %d out of range 0..%d", cfg.Shard, cfg.Map.Shards()-1)
	}
	ttl := cfg.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	sweep := cfg.SweepEvery
	if sweep <= 0 {
		sweep = ttl / 4
	}
	s := &Service{
		shard:   cfg.Shard,
		shards:  cfg.Map.Shards(),
		mapBody: appendMap(make([]byte, 0, mapSize(cfg.Map)), cfg.Map),
		version: cfg.Map.Version,
		inner:   cfg.Inner,
		wire:    cfg.Wire,
		locks:   cfg.Locks,
		inj:     cfg.Fault,
		stop:    make(chan struct{}),
	}
	if cfg.Locks != nil {
		s.leases = NewLeaseTable(ttl, cfg.Now)
		s.wg.Add(1)
		go s.sweep(sweep)
	}
	return s, nil
}

// Close stops the lease sweeper. It does not close the wrapped lock
// manager or handler.
func (s *Service) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// Leases exposes the lease table (experiments and tests); nil without a
// lock manager.
func (s *Service) Leases() *LeaseTable { return s.leases }

// Handle is the rpc.Handler: cluster methods are served here, everything
// else passes the namespace ownership check and delegates to the wrapped
// rpcfs handler.
func (s *Service) Handle(method string, body []byte) ([]byte, error) {
	switch method {
	case MMap:
		return s.mapBody, nil
	case MLockAcquire:
		return s.handleAcquire(body)
	case MLockRenew:
		return s.handleRenew(body)
	case MLockRelease:
		return s.handleRelease(body)
	}
	// Ownership check: a path-addressed request for a name homed on another
	// shard is redirected, not executed. ID-addressed requests carry raw
	// per-server IDs (the router strips the shard tag), and name.list is
	// answered locally — the router fans it out and merges.
	if path, ok, err := rpcfs.PathOfRequest(method, body, s.wire); err != nil {
		return nil, err
	} else if ok {
		if home := ShardForPath(path, s.shards); home != s.shard {
			return nil, NotMine(home, s.version)
		}
	}
	return s.inner(method, body)
}

func (s *Service) handleAcquire(body []byte) ([]byte, error) {
	if s.locks == nil {
		return nil, errors.New("cluster: no lock service on this shard")
	}
	a, err := decodeLockAcquire(body)
	if err != nil {
		return nil, err
	}
	// One transaction, one owning client: reject before touching the lock
	// manager so a stray second client cannot piggyback on the lease.
	ok, created := s.leases.Grant(a.Client, a.Txn)
	if !ok {
		return nil, fmt.Errorf("cluster: txn %d leased to another client", a.Txn)
	}
	item := lock.ItemID{File: a.File, Offset: a.Off, Length: a.Len}
	granted, err := s.locks.TryAcquire(lock.TxnID(a.Txn), int(a.PID), lock.Level(a.Level), item, lock.Mode(a.Mode))
	if (err != nil || !granted) && created {
		// The acquire this lease was minted for was denied: drop it, or the
		// sweeper would later break a transaction whose client was never
		// told it had a lease to renew.
		s.leases.Release(a.Txn)
	}
	if err != nil {
		return nil, err
	}
	return appendLockReply(make([]byte, 0, 1), LockReply{Granted: granted}), nil
}

func (s *Service) handleRenew(body []byte) ([]byte, error) {
	if s.locks == nil {
		return nil, errors.New("cluster: no lock service on this shard")
	}
	a, err := decodeLockTxn(body)
	if err != nil {
		return nil, err
	}
	if !s.leases.Renew(a.Client, a.Txn) {
		return nil, fmt.Errorf("%s: txn %d", leaseLostMarker, a.Txn)
	}
	return nil, nil
}

func (s *Service) handleRelease(body []byte) ([]byte, error) {
	if s.locks == nil {
		return nil, errors.New("cluster: no lock service on this shard")
	}
	a, err := decodeLockTxn(body)
	if err != nil {
		return nil, err
	}
	s.locks.ReleaseAll(lock.TxnID(a.Txn))
	s.leases.Release(a.Txn)
	return nil, nil
}

// sweep periodically breaks the locks of transactions whose lease expired:
// their client is dead or partitioned, and §6.4's break path makes the
// transaction abort at its next lock operation (or via OnBreak).
func (s *Service) sweep(every time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			due := s.leases.ExpireDue()
			if len(due) == 0 {
				continue
			}
			s.inj.Hit(PtLeaseSweep)
			for _, txn := range due {
				s.locks.Break(lock.TxnID(txn))
			}
		}
	}
}
