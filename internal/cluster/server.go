package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/lock"
	"repro/internal/obs"
	"repro/internal/replication"
	"repro/internal/rpc"
	"repro/internal/rpcfs"
)

// PtLeaseSweep is the fault point on the server's lease sweeper, hit once
// per sweep that breaks at least one lease.
var PtLeaseSweep = fault.Register("cluster.lease.sweep")

// errLeaseLost is the service error a renewal (or release) gets back once
// the lease has expired and been swept; the marker string is what
// IsLeaseLost matches after the error has crossed the wire.
const leaseLostMarker = "cluster: lease lost"

// IsLeaseLost reports whether a remote error means the transaction's lease
// expired server-side (its locks have been broken).
func IsLeaseLost(err error) bool {
	return err != nil && strings.Contains(err.Error(), leaseLostMarker)
}

// DefaultLeaseTTL is the lease duration when ServiceConfig leaves it zero.
const DefaultLeaseTTL = 2 * time.Second

// ServiceConfig configures one shard's cluster service.
type ServiceConfig struct {
	// Shard is this server's shard index in Map.Endpoints.
	Shard int
	// Map is the cluster map this server serves to clients. Required:
	// len(Map.Endpoints) is the shard count the ownership check uses.
	Map Map
	// Inner is the wrapped rpcfs server handler executing owned requests.
	// Required.
	Inner rpc.Handler
	// Wire is the payload codec of the inner rpcfs server, needed to decode
	// path-addressed requests for the ownership check.
	Wire rpc.WireFormat
	// Locks enables the network lock service; nil serves file/name methods
	// only.
	Locks *lock.Manager
	// LeaseTTL is the client lease duration (DefaultLeaseTTL when zero).
	LeaseTTL time.Duration
	// SweepEvery is the lease sweeper period (LeaseTTL/4 when zero).
	SweepEvery time.Duration
	// Now is the lease clock; nil means time.Now.
	Now func() time.Time
	// Fault is consulted at PtLeaseSweep, PtReplShip, and PtReplAck.
	// Optional.
	Fault *fault.Injector
	// Obs, when set, receives this server's cluster/replication telemetry:
	// group-commit spans, lease and failover counters, the replication-lag
	// histogram, and the failover event log. Optional; nil records nothing.
	Obs *obs.Recorder
	// InnerCtx, when set, is the context-aware form of Inner (an rpcfs
	// Server.HandlerCtx), used so owned requests execute under the cluster
	// span and the file service's own spans nest inside the caller's trace.
	// Falls back to Inner when nil.
	InnerCtx func(ctx context.Context, method string, body []byte) ([]byte, error)

	// Role selects the shard's replication role (RoleNone — unreplicated —
	// when zero; see repl.go). A primary requires Backup and a backup
	// address in Map.Backups[Shard]; a backup requires its own address
	// there, the address it promotes the shard's endpoint to.
	Role Role
	// Backup is a primary's dedicated rpc connection to its backup
	// (typically over its own transport, client ID ReplClientID(Shard)).
	Backup *rpc.Client
	// ReplTTL is the replication lease: the primary heartbeats at a third
	// of it, the backup promotes after a full one of silence
	// (DefaultReplTTL when zero).
	ReplTTL time.Duration
}

// Service is the per-shard server wrapper: it owns a slice of the naming
// namespace, redirects path-addressed requests for names it does not own,
// serves the shard map, runs the leased network lock service, and — on
// replicated shards — the primary/backup replication machinery (repl.go).
type Service struct {
	shard    int
	shards   int
	inner    rpc.Handler
	wire     rpc.WireFormat
	locks    *lock.Manager
	leases   *LeaseTable
	inj      *fault.Injector
	now      func() time.Time
	rec      *obs.Recorder
	innerCtx func(ctx context.Context, method string, body []byte) ([]byte, error)

	// The served map is mutable: promotion, fencing, and a lost backup
	// rewrite it at a bumped version.
	mMu     sync.RWMutex
	cur     Map
	mapBody []byte // pre-encoded shard map reply

	// Replication state (repl.go); role is RoleNone on unreplicated shards.
	role       atomic.Int32
	repl       *replState
	self       string       // backup: own address, installed on promotion
	backupAddr string       // primary: successor address, installed on fencing
	lastHeard  atomic.Int64 // backup: UnixNano of last primary contact
	ep         atomic.Pointer[rpc.Endpoint]

	stop     chan struct{}
	wg       sync.WaitGroup
	stopOnce sync.Once
}

// NewService builds the shard service and starts its lease sweeper (when a
// lock manager is attached). Close stops the sweeper.
func NewService(cfg ServiceConfig) (*Service, error) {
	if cfg.Inner == nil {
		return nil, errors.New("cluster: nil inner handler")
	}
	if cfg.Map.Shards() == 0 {
		return nil, errors.New("cluster: empty shard map")
	}
	if cfg.Shard < 0 || cfg.Shard >= cfg.Map.Shards() {
		return nil, fmt.Errorf("cluster: shard %d out of range 0..%d", cfg.Shard, cfg.Map.Shards()-1)
	}
	ttl := cfg.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	sweep := cfg.SweepEvery
	if sweep <= 0 {
		sweep = ttl / 4
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	m := cfg.Map.Clone()
	s := &Service{
		shard:   cfg.Shard,
		shards:  cfg.Map.Shards(),
		cur:     m,
		mapBody: appendMap(make([]byte, 0, mapSize(m)), m),
		inner:   cfg.Inner,
		wire:    cfg.Wire,
		rec:     cfg.Obs,
		locks:   cfg.Locks,
		inj:     cfg.Fault,
		now:     now,
		stop:    make(chan struct{}),
	}
	s.innerCtx = cfg.InnerCtx
	if s.innerCtx == nil {
		s.innerCtx = func(_ context.Context, method string, body []byte) ([]byte, error) {
			return cfg.Inner(method, body)
		}
	}
	s.role.Store(int32(cfg.Role))
	if cfg.Locks != nil {
		s.leases = NewLeaseTable(ttl, cfg.Now)
		s.wg.Add(1)
		go s.sweep(sweep)
	}
	rttl := cfg.ReplTTL
	if rttl <= 0 {
		rttl = DefaultReplTTL
	}
	switch cfg.Role {
	case RoleNone:
	case RolePrimary:
		if cfg.Backup == nil {
			return nil, errors.New("cluster: primary role requires a backup connection")
		}
		if m.Backup(cfg.Shard) == "" {
			return nil, errors.New("cluster: primary role requires a backup address in the map")
		}
		s.backupAddr = m.Backup(cfg.Shard)
		r := &replState{ttl: rttl, bc: cfg.Backup}
		r.sh = replication.NewShipper(replication.ShipperConfig{
			Send:   s.shipBatch,
			OnDown: s.streamDown,
			Obs:    cfg.Obs,
		})
		s.repl = r
		s.wg.Add(1)
		go s.heartbeatLoop()
	case RoleBackup:
		if m.Backup(cfg.Shard) == "" {
			return nil, errors.New("cluster: backup role requires its own address in the map")
		}
		s.self = m.Backup(cfg.Shard)
		s.repl = &replState{ttl: rttl, ap: &replication.Applier{
			Apply:    cfg.Inner,
			ApplyCtx: s.innerCtx,
			Seed:     s.seedDup,
			Obs:      cfg.Obs,
		}}
		// The promotion clock starts at the primary's first contact, not at
		// construction: a backup that boots before its (possibly slow)
		// primary must not usurp a shard nobody has served through it yet.
		s.wg.Add(1)
		go s.watchdogLoop()
	default:
		return nil, fmt.Errorf("cluster: cannot start in role %v", cfg.Role)
	}
	return s, nil
}

// shipBatch is the Shipper's Send: one MReplApply round trip to the
// backup, with PtReplShip consulted first. ctx carries the ship span, so
// the traced frame continues the trace on the backup.
func (s *Service) shipBatch(ctx context.Context, batch []byte) error {
	if err := s.inj.Err(PtReplShip); err != nil {
		return err
	}
	if d := s.inj.Delay(PtReplShip); d > 0 {
		time.Sleep(d)
	}
	out, err := s.repl.bc.CallCtx(ctx, MReplApply, batch)
	s.repl.bc.ReleaseBody(out)
	return err
}

// streamDown is the Shipper's OnDown: a deposed primary fences itself, a
// primary that merely lost its backup drops it from the map and serves
// solo.
func (s *Service) streamDown(cause error) {
	if isPromoted(cause) {
		s.stepDown()
	} else {
		s.backupDown()
	}
}

// seedDup stores a replayed reply in the serving endpoint's duplicate
// cache (see Applier.Seed). Replies are plain allocations — rpcfs's enc
// never draws from the transport pools — so retaining them is safe.
func (s *Service) seedDup(client, cseq uint64, reply []byte) {
	if ep := s.ep.Load(); ep != nil {
		ep.SeedDup(client, cseq, reply, "")
	}
}

// Close stops the lease sweeper and the replication loops, and shuts the
// ship stream down. It does not close the wrapped lock manager, handler,
// or the backup connection (the caller owns that transport).
func (s *Service) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	if r := s.repl; r != nil && r.sh != nil {
		r.sh.Close()
	}
	s.wg.Wait()
}

// Leases exposes the lease table (experiments and tests); nil without a
// lock manager.
func (s *Service) Leases() *LeaseTable { return s.leases }

// Handle is the rpc.Handler adapter over HandleRequest for callers without
// request identity (tests, single-process rigs). Mutations executed through
// it replicate without duplicate-cache seeding — there is no client to
// seed for.
func (s *Service) Handle(method string, body []byte) ([]byte, error) {
	return s.HandleRequest(rpc.Request{Method: method, Body: body})
}

// HandleRequest is the rpc.RequestHandler adapter over HandleRequestCtx
// for callers without a span context.
func (s *Service) HandleRequest(req rpc.Request) ([]byte, error) {
	return s.HandleRequestCtx(context.Background(), req)
}

// HandleRequestCtx is the rpc.CtxRequestHandler: cluster methods are
// served here, everything else passes the role and namespace ownership
// checks and delegates to the wrapped rpcfs handler (replicated to the
// backup when this shard is a primary — see execReplicated). Serve it via
// rpc.WithCtxRequestHandler so replication records carry the originating
// client's identity and ctx carries the endpoint's serve span, keeping the
// whole execution inside the caller's trace.
func (s *Service) HandleRequestCtx(ctx context.Context, req rpc.Request) ([]byte, error) {
	switch req.Method {
	case MMap:
		return s.mapReply(), nil
	case MReplApply:
		return s.handleReplApply(ctx, req.Body)
	case MReplHeartbeat:
		return s.handleReplHeartbeat()
	}
	// A backup (or fenced former primary) serves the map and replication
	// traffic above, nothing else: clients get a retriable refusal and
	// re-route toward the current primary.
	if err := s.checkServing(); err != nil {
		return nil, err
	}
	switch req.Method {
	case MLockAcquire:
		return s.handleAcquire(req.Body)
	case MLockRenew:
		return s.handleRenew(req.Body)
	case MLockRelease:
		return s.handleRelease(req.Body)
	}
	// Ownership check: a path-addressed request for a name homed on another
	// shard is redirected, not executed. ID-addressed requests carry raw
	// per-server IDs (the router strips the shard tag), and name.list is
	// answered locally — the router fans it out and merges.
	if path, ok, err := rpcfs.PathOfRequest(req.Method, req.Body, s.wire); err != nil {
		return nil, err
	} else if ok {
		if home := ShardForPath(path, s.shards); home != s.shard {
			return nil, NotMine(home, s.curVersion())
		}
	}
	return s.execReplicated(ctx, req)
}

func (s *Service) handleAcquire(body []byte) ([]byte, error) {
	if s.locks == nil {
		return nil, errors.New("cluster: no lock service on this shard")
	}
	a, err := decodeLockAcquire(body)
	if err != nil {
		return nil, err
	}
	// One transaction, one owning client: reject before touching the lock
	// manager so a stray second client cannot piggyback on the lease.
	ok, created := s.leases.Grant(a.Client, a.Txn)
	if !ok {
		return nil, fmt.Errorf("cluster: txn %d leased to another client", a.Txn)
	}
	if created {
		s.rec.Gauge(MetricLeaseGrants).Inc()
	}
	item := lock.ItemID{File: a.File, Offset: a.Off, Length: a.Len}
	granted, err := s.locks.TryAcquire(lock.TxnID(a.Txn), int(a.PID), lock.Level(a.Level), item, lock.Mode(a.Mode))
	if (err != nil || !granted) && created {
		// The acquire this lease was minted for was denied: drop it, or the
		// sweeper would later break a transaction whose client was never
		// told it had a lease to renew.
		s.leases.Release(a.Txn)
	}
	if err != nil {
		return nil, err
	}
	return appendLockReply(make([]byte, 0, 1), LockReply{Granted: granted}), nil
}

func (s *Service) handleRenew(body []byte) ([]byte, error) {
	if s.locks == nil {
		return nil, errors.New("cluster: no lock service on this shard")
	}
	a, err := decodeLockTxn(body)
	if err != nil {
		return nil, err
	}
	if !s.leases.Renew(a.Client, a.Txn) {
		return nil, fmt.Errorf("%s: txn %d", leaseLostMarker, a.Txn)
	}
	s.rec.Gauge(MetricLeaseRenews).Inc()
	return nil, nil
}

func (s *Service) handleRelease(body []byte) ([]byte, error) {
	if s.locks == nil {
		return nil, errors.New("cluster: no lock service on this shard")
	}
	a, err := decodeLockTxn(body)
	if err != nil {
		return nil, err
	}
	s.locks.ReleaseAll(lock.TxnID(a.Txn))
	s.leases.Release(a.Txn)
	s.rec.Gauge(MetricLeaseReleases).Inc()
	return nil, nil
}

// sweep periodically breaks the locks of transactions whose lease expired:
// their client is dead or partitioned, and §6.4's break path makes the
// transaction abort at its next lock operation (or via OnBreak).
func (s *Service) sweep(every time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			due := s.leases.ExpireDue()
			if len(due) == 0 {
				continue
			}
			s.inj.Hit(PtLeaseSweep)
			s.rec.Gauge(MetricLeaseExpired).Add(int64(len(due)))
			s.rec.Eventf("lease-break", "shard %d: broke %d expired lease(s)", s.shard, len(due))
			for _, txn := range due {
				s.locks.Break(lock.TxnID(txn))
			}
		}
	}
}
