package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/rpc"
	"repro/internal/rpcfs"
)

// TestWithPathRedirects tables the redirect-following loop: a redirect
// refreshes the map and retries on the named shard, a bounded number of
// times; out-of-range homes and ordinary errors end the loop immediately.
func TestWithPathRedirects(t *testing.T) {
	r := newRig(t, 3, 0)
	rt := r.router(t, 400)
	path := "/withpath/f"
	home := ShardForPath(path, 3)

	plain := errors.New("ordinary failure")
	cases := []struct {
		name string
		// plan maps a shard to its response; shards absent from the plan
		// succeed. Responses run through the real error types the servers
		// produce.
		plan      func(shard int, call int) error
		wantErr   error // nil: fn must eventually succeed
		wantCalls int
	}{
		{
			name:      "no redirect",
			plan:      func(int, int) error { return nil },
			wantCalls: 1,
		},
		{
			name: "one hop to the named home",
			plan: func(shard, _ int) error {
				if shard == home {
					return NotMine((home+1)%3, 1)
				}
				return nil
			},
			wantCalls: 2,
		},
		{
			name:      "ping-pong loop exhausts the attempt budget",
			plan:      func(shard, _ int) error { return NotMine((shard+1)%3, 1) },
			wantErr:   errRedirect,
			wantCalls: redirectAttempts,
		},
		{
			name:      "out-of-range home ends the loop",
			plan:      func(int, int) error { return NotMine(7, 1) },
			wantErr:   errRedirect,
			wantCalls: 1,
		},
		{
			name:      "ordinary errors pass through untouched",
			plan:      func(int, int) error { return plain },
			wantErr:   plain,
			wantCalls: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			calls := 0
			err := rt.withPath(path, func(c *rpcfs.Client, shard int) error {
				calls++
				return tc.plan(shard, calls)
			})
			if calls != tc.wantCalls {
				t.Fatalf("fn ran %d times, want %d", calls, tc.wantCalls)
			}
			switch {
			case tc.wantErr == nil:
				if err != nil {
					t.Fatalf("withPath = %v, want success", err)
				}
			case tc.wantErr == errRedirect:
				if _, ok := ParseNotMine(err); !ok {
					t.Fatalf("withPath = %v, want the last redirect error", err)
				}
			default:
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("withPath = %v, want %v", err, tc.wantErr)
				}
			}
		})
	}
}

// errRedirect is a sentinel for the table above: "expect the final redirect
// error", whose concrete value the loop constructs.
var errRedirect = errors.New("want redirect error")

// TestRefreshMapRules pins the map-installation rules: only a strictly
// newer version with the same endpoint count replaces the current map (the
// shard count is fixed for the router's lifetime — connections are
// per-shard).
func TestRefreshMapRules(t *testing.T) {
	r := newRig(t, 3, 0)
	rt := r.router(t, 401)

	// The servers serve version 1: an older local map is superseded.
	rt.mu.Lock()
	rt.cur.Version = 0
	rt.mu.Unlock()
	rt.refreshMap(0)
	if v := rt.Map().Version; v != 1 {
		t.Fatalf("older map not refreshed: version %d, want 1", v)
	}

	// A local map already newer than the server's is kept.
	rt.mu.Lock()
	rt.cur.Version = 5
	rt.mu.Unlock()
	rt.refreshMap(0)
	if v := rt.Map().Version; v != 5 {
		t.Fatalf("newer local map clobbered by an older server map: version %d", v)
	}

	// A server map with a different endpoint count is ignored even when its
	// version is newer.
	saved := rt.Map()
	rt.mu.Lock()
	rt.cur = Map{Version: 0, Endpoints: saved.Endpoints[:2]}
	rt.mu.Unlock()
	rt.refreshMap(0)
	if got := rt.Map(); len(got.Endpoints) != 2 || got.Version != 0 {
		t.Fatalf("map with mismatched endpoint count installed: %+v", got)
	}
	rt.mu.Lock()
	rt.cur = saved
	rt.mu.Unlock()
}

// TestLockClientAcquireCanceledContext: an already-canceled context must
// return immediately without issuing a network call — the bug was a first
// try that always went out, burning a round trip per canceled acquire.
func TestLockClientAcquireCanceledContext(t *testing.T) {
	r := newRig(t, 1, time.Second)
	rt := r.router(t, 402)
	lc := NewLockClient(rt.Lock(0), 402, time.Second, nil)
	defer lc.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := lc.Acquire(ctx, 1, 1, lock.Record, lock.ItemID{File: 1, Offset: 0, Length: 10}, lock.IWrite)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire with canceled context = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("canceled acquire took %v; it must not wait on the network or backoff", d)
	}
}

// TestLockClientBufferBalance: the acquire/release/renew paths recycle every
// pooled request and reply buffer, including the denied-try polling loop —
// the leak was one request buffer per denied try.
func TestLockClientBufferBalance(t *testing.T) {
	const ttl = 200 * time.Millisecond
	r := newRig(t, 1, ttl)
	rt := r.router(t, 403)
	lc := NewLockClient(rt.Lock(0), 403, ttl, nil)

	item := lock.ItemID{File: 42, Offset: 0, Length: 10}
	if err := lc.Acquire(context.Background(), 1, 1, lock.Record, item, lock.IWrite); err != nil {
		t.Fatal(err)
	}
	base := settleBalance(t)

	// A contending transaction polls denied tries until the holder releases.
	done := make(chan error, 1)
	go func() {
		done <- lc.Acquire(context.Background(), 2, 2, lock.Record, item, lock.IWrite)
	}()
	time.Sleep(30 * time.Millisecond) // several denied tries
	if err := lc.Release(1); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("contended acquire: %v", err)
	}
	if err := lc.Release(2); err != nil {
		t.Fatal(err)
	}
	// Stop the background renewer before the final audit so the ledger can
	// go quiescent.
	lc.Close()
	waitBalance(t, base, "after contended acquire/release")
}

func settleBalance(t *testing.T) int64 {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	gets, puts := rpc.BufferBalance()
	last := gets - puts
	stable := 0
	for stable < 5 {
		time.Sleep(2 * time.Millisecond)
		gets, puts = rpc.BufferBalance()
		if d := gets - puts; d != last {
			last, stable = d, 0
		} else {
			stable++
		}
		if time.Now().After(deadline) {
			t.Fatalf("buffer ledger never settled (gets-puts = %d)", last)
		}
	}
	return last
}

func waitBalance(t *testing.T, want int64, what string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		gets, puts := rpc.BufferBalance()
		if gets-puts == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: pooled buffers out of balance: gets-puts = %d, want %d", what, gets-puts, want)
		}
		time.Sleep(time.Millisecond)
	}
}
