// Package cluster scales the single-server RHODOS facility out to several
// servers. It adds three pieces on top of the rpc/rpcfs stack:
//
//   - A shard map (Map) partitioning the naming namespace across N server
//     endpoints by a hash of the parent directory, so all files in one
//     directory share a home shard. The map is versioned and served to
//     clients over the cluster.map method; a server receiving a
//     path-addressed request for a name it does not own answers with a
//     structured "wrong shard" redirect instead of executing it.
//
//   - A client-side router (Router) implementing the agent service
//     interfaces over the shard map: one multiplexed connection per server,
//     names resolved to their home shard, system names tagged with the shard
//     index in their upper bits so ID-addressed operations route without a
//     second name lookup, and transparent re-route on redirect.
//
//   - A network lock service (Service lock methods + LockClient) wrapping
//     internal/lock behind rpc with per-transaction leases: clients renew in
//     the background, and a server-side sweeper breaks the locks of
//     transactions whose client died or was partitioned away, reusing the
//     §6.4 lock-invulnerability break machinery so those transactions abort
//     cleanly.
package cluster

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// ShardShift positions the shard index in the upper bits of a routed
// 64-bit system name. Raw per-server FileIDs are sequential small integers,
// far below 2^48, so the tag never collides with the ID proper.
const ShardShift = 48

// rawIDMask extracts the per-server ID from a routed system name.
const rawIDMask = uint64(1)<<ShardShift - 1

// Map is the versioned shard map: endpoint i serves shard i of
// len(Endpoints). Servers hand it to clients via the cluster.map method;
// higher versions supersede lower ones. Backups, when present, holds one
// address per shard in shard order — the hot standby a client may fail over
// to when the shard's primary stops answering ("" for shards without one).
// Failover and promotion rewrite Endpoints/Backups and bump Version; the
// shard count never changes within a map's lifetime.
type Map struct {
	Version   uint64
	Endpoints []string
	Backups   []string
}

// Shards returns the number of shards in the map.
func (m Map) Shards() int { return len(m.Endpoints) }

// Backup returns shard i's backup address, or "" when it has none.
func (m Map) Backup(i int) string {
	if i < 0 || i >= len(m.Backups) {
		return ""
	}
	return m.Backups[i]
}

// Clone deep-copies the map, so a holder may mutate its copy (promotion,
// fencing) without racing readers of the original.
func (m Map) Clone() Map {
	c := Map{Version: m.Version}
	if m.Endpoints != nil {
		c.Endpoints = append([]string(nil), m.Endpoints...)
	}
	if m.Backups != nil {
		c.Backups = append([]string(nil), m.Backups...)
	}
	return c
}

// ShardForPath returns the home shard of an attributed path name among n
// shards: a hash of the parent directory, so all files in one directory
// colocate and a directory listing is answerable by fan-out without
// cross-shard joins per entry.
func ShardForPath(path string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(parentDir(path)))
	return int(h.Sum64() % uint64(n))
}

// parentDir returns the directory component of path ("/" for top-level
// names), tolerating trailing slashes.
func parentDir(path string) string {
	p := strings.TrimSuffix(path, "/")
	i := strings.LastIndexByte(p, '/')
	if i <= 0 {
		return "/"
	}
	return p[:i]
}

// ParseShard parses an "i/N" shard designator ("0/3" = shard 0 of 3) as
// taken on a command line. The empty string means a single-shard cluster.
func ParseShard(s string) (shard, shards int, err error) {
	if s == "" {
		return 0, 1, nil
	}
	if _, err := fmt.Sscanf(s, "%d/%d", &shard, &shards); err != nil {
		return 0, 0, fmt.Errorf("cluster: bad shard %q, want i/N: %v", s, err)
	}
	if shards < 1 || shard < 0 || shard >= shards {
		return 0, 0, fmt.Errorf("cluster: shard %d out of range for %d shards", shard, shards)
	}
	return shard, shards, nil
}

// RoutedID tags a per-server system name with its home shard so
// ID-addressed operations route without a name lookup.
func RoutedID(shard int, raw uint64) uint64 {
	return uint64(shard)<<ShardShift | (raw & rawIDMask)
}

// SplitID undoes RoutedID.
func SplitID(routed uint64) (shard int, raw uint64) {
	return int(routed >> ShardShift), routed & rawIDMask
}

// notMineMarker prefixes the redirect error message. It travels as an
// rpc.ServiceError message string, so the parser matches on the substring
// rather than a concrete error type.
const notMineMarker = "cluster: wrong shard: home="

// NotMine builds the redirect error a shard returns for a path-addressed
// request whose name it does not own: home is the owning shard and version
// the responder's map version, so a client with a stale map knows to
// refresh.
func NotMine(home int, version uint64) error {
	return fmt.Errorf("%s%d version=%d", notMineMarker, home, version)
}

// ParseNotMine reports whether err (possibly a wrapped rpc.ServiceError)
// is a shard redirect, and if so which shard the request belongs to.
func ParseNotMine(err error) (home int, ok bool) {
	if err == nil {
		return 0, false
	}
	msg := err.Error()
	i := strings.Index(msg, notMineMarker)
	if i < 0 {
		return 0, false
	}
	if _, serr := fmt.Sscanf(msg[i+len(notMineMarker):], "%d", &home); serr != nil {
		return 0, false
	}
	return home, true
}
