package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agent"
	"repro/internal/ccache"
	"repro/internal/fileservice"
	"repro/internal/fit"
	"repro/internal/metrics"
	"repro/internal/naming"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/rpcfs"
)

// redirectAttempts bounds the refresh-and-retry loop a shard redirect
// triggers; with a static map one hop settles it, the slack covers a map
// version racing in between.
const redirectAttempts = 3

// RouterConfig configures a client-side shard router.
type RouterConfig struct {
	// Endpoints is the bootstrap server list, one address per shard, in
	// shard order. Required.
	Endpoints []string
	// ClientID identifies this agent instance to every server's duplicate
	// cache. Required, unique per router.
	ClientID uint64
	// Retries is the per-call rpc retry budget (default 10).
	Retries int
	// Backups is the bootstrap backup list, one address per shard in shard
	// order ("" for shards without a backup). Optional; when set its length
	// must match Endpoints. A shard with a backup fails over: on connection
	// errors or not-primary rejections the shard's transport alternates
	// between the pair until one answers as primary.
	Backups []string
	// Wire selects the transport and rpcfs payload format for every
	// connection; must match the servers'.
	Wire rpc.WireFormat
	// Metrics receives rpc client counters. Optional.
	Metrics *metrics.Set
	// Obs, when set, receives router telemetry: per-shard routing spans on
	// the traced read/write path, redirect and rebind counters, and the
	// map-refresh latency histogram. Optional.
	Obs *obs.Recorder
}

// Router implements the agent service interfaces (FileService, NameService,
// PathCreator) across a cluster of shard servers: one multiplexed
// connection per server, attributed names routed to their home shard,
// system names tagged with the shard index (RoutedID) so ID-addressed
// operations need no name lookup, and shard redirects retried after a map
// refresh.
type Router struct {
	trs    []*rpc.TCPTransport
	rcs    []*rpc.Client
	fs     []*rpcfs.Client
	leases []*ccache.DirectLease
	rec    *obs.Recorder

	// sink receives server pushes (lease recalls) and connection-death
	// notices from every shard connection. Installed after construction
	// (SetPushSink) because the consumer — the client cache — is built on
	// top of the router; the dial-time handlers read it atomically, so
	// pushes survive failover re-dials without rewiring.
	sink atomic.Pointer[pushSink]

	mu  sync.RWMutex
	cur Map // current shard map (bootstrap until a server serves a newer one)

	rr atomic.Uint64 // round-robin counter for anonymous creates
}

// pushSink is the router's installed push/conn-down fan-in.
type pushSink struct {
	onPush func(shard int, method string, body []byte)
	onDown func(shard int, err error)
}

var (
	_ agent.FileService     = (*Router)(nil)
	_ agent.NameService     = (*Router)(nil)
	_ agent.PathCreator     = (*Router)(nil)
	_ ccache.LeaseTransport = (*Router)(nil)
)

// NewRouter dials every endpoint and returns the router. Dialing is lazy —
// the first call pays the dial — so construction succeeds even with servers
// still booting (or a dead primary whose backup will take over). Each
// shard's transport re-resolves its address from the current map on every
// re-dial, alternating with the shard's backup when one exists, and
// not-primary rejections (an unpromoted backup, a fenced ex-primary) are
// retried the same way, so a failover is invisible to callers beyond
// latency.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Endpoints) == 0 {
		return nil, errors.New("cluster: no endpoints")
	}
	if cfg.ClientID == 0 {
		return nil, errors.New("cluster: zero client ID")
	}
	if len(cfg.Backups) != 0 && len(cfg.Backups) != len(cfg.Endpoints) {
		return nil, fmt.Errorf("cluster: %d backup addresses for %d shards", len(cfg.Backups), len(cfg.Endpoints))
	}
	retries := cfg.Retries
	if retries <= 0 {
		retries = 10
	}
	r := &Router{cur: Map{Endpoints: cfg.Endpoints, Backups: cfg.Backups}, rec: cfg.Obs}
	for i, addr := range cfg.Endpoints {
		shard := i
		tr, err := rpc.DialTCP(addr,
			rpc.WithWireFormat(cfg.Wire),
			rpc.WithLazyDial(),
			rpc.WithAddrResolver(func(prev string) string { return r.failoverAddr(shard, prev) }),
			rpc.WithPushHandler(func(method string, body []byte) {
				if s := r.sink.Load(); s != nil && s.onPush != nil {
					s.onPush(shard, method, body)
				}
			}),
			rpc.WithConnDown(func(err error) {
				if s := r.sink.Load(); s != nil && s.onDown != nil {
					s.onDown(shard, err)
				}
			}))
		if err != nil {
			r.Shutdown()
			return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
		}
		rc := rpc.NewClient(tr, cfg.ClientID, retries, cfg.Metrics)
		rc.SetRetryOn(func(se *rpc.ServiceError) bool { return IsNotReady(se) })
		r.trs = append(r.trs, tr)
		r.rcs = append(r.rcs, rc)
		r.fs = append(r.fs, &rpcfs.Client{C: rc, Wire: cfg.Wire})
		r.leases = append(r.leases, &ccache.DirectLease{C: rc})
	}
	return r, nil
}

// SetPushSink installs the router's push fan-in: onPush receives every
// server push (shard index, method, body — the body is only valid for the
// duration of the call), onDown fires once per shard-connection death.
// Either may be nil. The client cache wires its recall handler and its
// drop-leases-on-disconnect hook here; installing after construction is
// safe because the handlers read the sink atomically.
func (r *Router) SetPushSink(onPush func(shard int, method string, body []byte), onDown func(shard int, err error)) {
	r.sink.Store(&pushSink{onPush: onPush, onDown: onDown})
}

// failoverAddr picks the address for a shard connection's next dial: the
// shard's current map endpoint, or — when the previous dial used exactly
// that endpoint and the shard has a backup — the backup, so re-dials
// alternate between the pair until one of them answers as primary. It runs
// under the transport's lock and only reads the router's map.
func (r *Router) failoverAddr(shard int, prev string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p := r.cur.Endpoints[shard]
	if b := r.cur.Backup(shard); b != "" && prev == p {
		r.rec.Gauge(MetricRouterRebinds).Inc()
		return b
	}
	return p
}

// Shutdown closes every server connection. (Close is the FileService
// descriptor operation.)
func (r *Router) Shutdown() {
	for _, tr := range r.trs {
		_ = tr.Close()
	}
}

// Map returns the router's current shard map.
func (r *Router) Map() Map {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.cur
}

// Lock returns the raw rpc client for one shard, for layering the network
// lock service (LockClient) over the same multiplexed connection.
func (r *Router) Lock(shard int) *rpc.Client { return r.rcs[shard] }

// shards returns the shard count of the current map.
func (r *Router) shards() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.cur.Endpoints)
}

// refreshMap pulls the shard map from the server that issued a redirect —
// it is the one that knows a newer version — and installs it if it
// supersedes the current one. The shard count is fixed for the life of the
// router (connections are per-shard), so maps with a different endpoint
// count are ignored; the endpoints themselves may change, which is how a
// promotion or fencing reaches the failover address resolver.
func (r *Router) refreshMap(from int) {
	t0 := time.Now()
	body, err := r.rcs[from].Call(MMap, nil)
	r.rec.ValueHist(MetricRouterMapRefresh).Record(time.Since(t0))
	if err != nil {
		return
	}
	m, err := decodeMap(body)
	r.rcs[from].ReleaseBody(body)
	if err != nil {
		return
	}
	r.mu.Lock()
	installed := m.Version > r.cur.Version && len(m.Endpoints) == len(r.cur.Endpoints)
	if installed {
		r.cur = m
	}
	r.mu.Unlock()
	if installed {
		r.rec.Eventf("rebind", "installed map v%d from shard %d", m.Version, from)
	}
}

// withPath runs fn against path's home shard, following at most
// redirectAttempts shard redirects: each redirect refreshes the map from
// the redirecting server, then retries against the shard the redirect
// named.
func (r *Router) withPath(path string, fn func(c *rpcfs.Client, shard int) error) error {
	shard := ShardForPath(path, r.shards())
	var err error
	for attempt := 0; attempt < redirectAttempts; attempt++ {
		err = fn(r.fs[shard], shard)
		home, redirected := ParseNotMine(err)
		if !redirected {
			return err
		}
		r.rec.Gauge(MetricRouterRedirects).Inc()
		r.refreshMap(shard)
		if home < 0 || home >= len(r.fs) {
			return err
		}
		shard = home
	}
	return err
}

// conn splits a routed system name into the owning shard's client and the
// raw per-server ID.
func (r *Router) conn(id fileservice.FileID) (*rpcfs.Client, fileservice.FileID, error) {
	shard, raw := SplitID(uint64(id))
	if shard >= len(r.fs) {
		return nil, 0, fmt.Errorf("cluster: system name %#x routes to unknown shard %d", uint64(id), shard)
	}
	return r.fs[shard], fileservice.FileID(raw), nil
}

// CreatePath creates a file and registers its name in one message on the
// path's home shard (agent.PathCreator).
func (r *Router) CreatePath(attr fit.Attributes, path string) (fileservice.FileID, error) {
	var routed fileservice.FileID
	err := r.withPath(path, func(c *rpcfs.Client, shard int) error {
		raw, err := c.CreatePath(attr, path)
		if err != nil {
			return err
		}
		routed = fileservice.FileID(RoutedID(shard, uint64(raw)))
		return nil
	})
	return routed, err
}

// Create creates an anonymous (unregistered) file on a round-robin shard.
func (r *Router) Create(attr fit.Attributes) (fileservice.FileID, error) {
	// Reduce modulo in uint64: converting the raw counter first would go
	// negative after wraparound on 32-bit platforms.
	shard := int(r.rr.Add(1) % uint64(r.shards()))
	raw, err := r.fs[shard].Create(attr)
	if err != nil {
		return 0, err
	}
	return fileservice.FileID(RoutedID(shard, uint64(raw))), nil
}

// Open implements agent.FileService.
func (r *Router) Open(id fileservice.FileID) error {
	c, raw, err := r.conn(id)
	if err != nil {
		return err
	}
	return c.Open(raw)
}

// Close implements agent.FileService: it closes one open file, not the
// router's connections (see Shutdown).
func (r *Router) Close(id fileservice.FileID) error {
	c, raw, err := r.conn(id)
	if err != nil {
		return err
	}
	return c.Close(raw)
}

// Delete implements agent.FileService.
func (r *Router) Delete(id fileservice.FileID) error {
	c, raw, err := r.conn(id)
	if err != nil {
		return err
	}
	return c.Delete(raw)
}

// ReadAt implements agent.FileService.
func (r *Router) ReadAt(id fileservice.FileID, off int64, n int) ([]byte, error) {
	c, raw, err := r.conn(id)
	if err != nil {
		return nil, err
	}
	return c.ReadAt(raw, off, n)
}

// WriteAt implements agent.FileService.
func (r *Router) WriteAt(id fileservice.FileID, off int64, data []byte) (int, error) {
	c, raw, err := r.conn(id)
	if err != nil {
		return 0, err
	}
	return c.WriteAt(raw, off, data)
}

// ReadAtCtx is the traced ReadAt: the agent's cache layer discovers it by
// type assertion and threads its span context through, so the routing hop
// appears as a cluster-layer span between the agent and the server's rpc
// serve span.
func (r *Router) ReadAtCtx(ctx context.Context, id fileservice.FileID, off int64, n int) ([]byte, error) {
	c, raw, err := r.conn(id)
	if err != nil {
		return nil, err
	}
	rctx, op := r.rec.StartOp(ctx, obs.LayerCluster, "readAt")
	out, err := c.ReadAtCtx(rctx, raw, off, n)
	op.End(err)
	return out, err
}

// WriteAtCtx is the traced WriteAt (see ReadAtCtx).
func (r *Router) WriteAtCtx(ctx context.Context, id fileservice.FileID, off int64, data []byte) (int, error) {
	c, raw, err := r.conn(id)
	if err != nil {
		return 0, err
	}
	rctx, op := r.rec.StartOp(ctx, obs.LayerCluster, "writeAt")
	n, err := c.WriteAtCtx(rctx, raw, off, data)
	op.End(err)
	return n, err
}

// Truncate implements agent.FileService.
func (r *Router) Truncate(id fileservice.FileID, size int64) error {
	c, raw, err := r.conn(id)
	if err != nil {
		return err
	}
	return c.Truncate(raw, size)
}

// Attributes implements agent.FileService.
func (r *Router) Attributes(id fileservice.FileID) (fit.Attributes, error) {
	c, raw, err := r.conn(id)
	if err != nil {
		return fit.Attributes{}, err
	}
	return c.Attributes(raw)
}

// Size implements agent.FileService.
func (r *Router) Size(id fileservice.FileID) (int64, error) {
	c, raw, err := r.conn(id)
	if err != nil {
		return 0, err
	}
	return c.Size(raw)
}

// leaseConn splits a routed file ID into the owning shard's lease
// transport and the raw per-server ID.
func (r *Router) leaseConn(file uint64) (*ccache.DirectLease, uint64, int, error) {
	shard, raw := SplitID(file)
	if shard >= len(r.leases) {
		return nil, 0, 0, fmt.Errorf("cluster: system name %#x routes to unknown shard %d", file, shard)
	}
	return r.leases[shard], raw, shard, nil
}

// AcquireLease implements ccache.LeaseTransport across shards: the routed
// file ID picks the owning shard's connection, and the raw ID crosses the
// wire. Failover is transparent — the shard client's not-primary retry
// rebinds toward the promoted backup, whose lease table already holds the
// replicated grants.
func (r *Router) AcquireLease(file, client uint64, mode byte) (ccache.Grant, error) {
	dl, raw, _, err := r.leaseConn(file)
	if err != nil {
		return ccache.Grant{}, err
	}
	return dl.AcquireLease(raw, client, mode)
}

// ReleaseLease implements ccache.LeaseTransport (see AcquireLease).
func (r *Router) ReleaseLease(file, client uint64) error {
	dl, raw, _, err := r.leaseConn(file)
	if err != nil {
		return err
	}
	return dl.ReleaseLease(raw, client)
}

// AckRecall implements ccache.LeaseTransport (see AcquireLease).
func (r *Router) AckRecall(file, client uint64) error {
	dl, raw, _, err := r.leaseConn(file)
	if err != nil {
		return err
	}
	return dl.AckRecall(raw, client)
}

// Register routes a naming entry to its home shard (agent.NameService). An
// entry whose system name is already routed must land on the shard its ID
// lives on — registering a file's name away from its data is refused.
func (r *Router) Register(e naming.Entry) error {
	path, hasPath := e.Name["path"]
	if !hasPath {
		// Pathless entries (devices) home on shard 0 by convention; their
		// system names stay untagged (RoutedID(0, x) == x).
		return r.fs[0].Register(e)
	}
	return r.withPath(path, func(c *rpcfs.Client, shard int) error {
		e2 := e
		if e.SystemName != 0 {
			owner, raw := SplitID(e.SystemName)
			if owner != shard {
				return fmt.Errorf("cluster: cannot register %q on shard %d: system name lives on shard %d",
					path, shard, owner)
			}
			e2.SystemName = raw
		}
		return c.Register(e2)
	})
}

// ResolvePath resolves an attributed path on its home shard, tagging the
// returned system name with the shard (agent.NameService).
func (r *Router) ResolvePath(path string) (naming.Entry, error) {
	var out naming.Entry
	err := r.withPath(path, func(c *rpcfs.Client, shard int) error {
		e, err := c.Resolve(path)
		if err != nil {
			return err
		}
		e.SystemName = RoutedID(shard, e.SystemName)
		out = e
		return nil
	})
	return out, err
}

// Resolve evaluates an attributed-name query (agent.NameService). A query
// carrying a path attribute routes to the home shard; anything else fans
// out to every shard and requires exactly one match, preserving the naming
// service's exactly-one semantics across the partition.
func (r *Router) Resolve(query naming.Name) (naming.Entry, error) {
	if _, ok := query["path"]; ok {
		// The wire protocol resolves by path; other attributes of a
		// path-carrying query are already part of the path's identity.
		return r.ResolvePath(query["path"])
	}
	var (
		found naming.Entry
		hits  int
	)
	for shard, c := range r.fs {
		e, err := c.ResolveQuery(query)
		if err != nil {
			if rpcfs.IsNotFound(err) {
				continue
			}
			return naming.Entry{}, err
		}
		e.SystemName = RoutedID(shard, e.SystemName)
		found = e
		hits++
	}
	switch hits {
	case 0:
		return naming.Entry{}, fmt.Errorf("cluster: no entry matches %s", query)
	case 1:
		return found, nil
	default:
		return naming.Entry{}, fmt.Errorf("cluster: %d entries match %s", hits, query)
	}
}

// UnregisterSystemName removes the registrations of a routed system name on
// its shard (agent.NameService).
func (r *Router) UnregisterSystemName(t naming.ObjectType, sys uint64) int {
	shard, raw := SplitID(sys)
	if shard >= len(r.fs) {
		return 0
	}
	n, err := r.fs[shard].UnregisterSys(t, raw)
	if err != nil {
		return 0
	}
	return n
}

// List merges one directory level across every shard: names in a directory
// may be homed anywhere once sub-directories diverge, so listing fans out
// and unions.
func (r *Router) List(dir string) ([]string, error) {
	seen := make(map[string]bool)
	for _, c := range r.fs {
		names, err := c.List(dir)
		if err != nil {
			return nil, err
		}
		for _, n := range names {
			seen[n] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}
