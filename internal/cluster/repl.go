package cluster

// Primary/backup shard replication and failover. A shard may run as a
// replicated pair: the primary executes mutations and ships the committed
// operation stream to a hot backup (internal/replication's Shipper/Applier)
// over a dedicated rpc connection, holding each reply until the backup has
// confirmed the mutation — replication rides the same barrier discipline as
// the group-commit sync. The backup replays the stream against its own file
// service and seeds its duplicate-request cache with the primary's replies,
// so a client retransmission that lands after a failover still gets the
// exactly-once answer.
//
// Failure handling is lease-shaped, like the lock service:
//
//   - The primary heartbeats the backup every TTL/3. A failed ship or
//     heartbeat marks the stream down and the primary serves solo (it drops
//     the backup from its map and bumps the version) — availability over
//     replication; re-syncing a lost backup is future work.
//
//   - The backup watches for primary silence. After a full TTL without a
//     ship or heartbeat it promotes itself: role flips to primary, its map
//     rewrites the shard's endpoint to its own address, version bumped.
//     Until then it refuses ordinary requests with a retriable "not
//     primary" error, which the router treats as a failover signal.
//
//   - A deposed primary that hears "promoted" from its backup fences
//     itself (RoleFenced) rather than keep serving a shard the cluster has
//     moved; rejoining as a backup is future work.
//
// Lock leases are not replicated: a failover breaks outstanding leases just
// as a server crash would, and transactions recover through the usual abort
// path against the promoted backup.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/ccache"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/replication"
	"repro/internal/rpc"
	"repro/internal/rpcfs"
)

// Replication methods.
const (
	// MReplApply ships one mutation batch primary→backup (batch frame,
	// 8-byte applied-watermark reply).
	MReplApply = "cluster.repl.apply"
	// MReplHeartbeat keeps the backup's promotion watchdog quiet between
	// mutations (no arguments, empty reply).
	MReplHeartbeat = "cluster.repl.heartbeat"
)

// Fault points on the replication path.
var (
	// PtReplShip is consulted before each batch ship: an error severs the
	// stream (the primary goes solo), a delay stalls the commit barrier.
	PtReplShip = fault.Register("cluster.repl.ship")
	// PtReplAck is consulted after the backup confirms, before the client is
	// answered: a delay here is the crash-before-ack window the failover
	// torture scenarios widen.
	PtReplAck = fault.Register("cluster.repl.ack")
)

// notPrimaryMarker is the service-error message a backup (or fenced former
// primary) answers ordinary requests with; it crosses the wire as a string,
// so IsNotReady matches the substring.
const notPrimaryMarker = "cluster: not primary for this shard"

// promotedMarker is what a promoted backup answers replication traffic
// with: the sender is a deposed primary and must fence itself.
const promotedMarker = "cluster: backup promoted"

// IsNotReady reports whether a remote error means the addressed server is
// not (or no longer) the shard's primary — the retriable failover signal
// the router's retry predicate matches.
func IsNotReady(err error) bool {
	return err != nil && strings.Contains(err.Error(), notPrimaryMarker)
}

// isPromoted reports whether a replication-path error means the backup has
// promoted itself.
func isPromoted(err error) bool {
	return err != nil && strings.Contains(err.Error(), promotedMarker)
}

// Role is a shard server's replication role.
type Role int32

const (
	// RoleNone is an unreplicated shard (the zero value): no backup, no
	// role checks — the pre-replication behaviour.
	RoleNone Role = iota
	// RolePrimary executes mutations and ships them to the backup.
	RolePrimary
	// RoleBackup replays the primary's stream and promotes on silence.
	RoleBackup
	// RoleFenced is a deposed primary: it refuses everything but the map,
	// pointing clients at its successor.
	RoleFenced
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleNone:
		return "none"
	case RolePrimary:
		return "primary"
	case RoleBackup:
		return "backup"
	case RoleFenced:
		return "fenced"
	default:
		return fmt.Sprintf("Role(%d)", int32(r))
	}
}

// DefaultReplTTL is the replication lease when ServiceConfig leaves it
// zero: the backup promotes after this much primary silence.
const DefaultReplTTL = time.Second

// ReplClientID is the rpc client identity the shard's replication stream
// uses toward the backup, far above any real agent's ID.
func ReplClientID(shard int) uint64 { return 1<<62 + uint64(shard) }

// replState is the replication half of a Service, present only on
// replicated shards.
type replState struct {
	ttl time.Duration

	// Primary side. ordMu serializes execute+append so the shipped stream
	// is one serialization order of the shard's mutations — the cost is
	// that replicated mutations execute one at a time (documented tradeoff;
	// reads are unaffected).
	ordMu sync.Mutex
	bc    *rpc.Client // dedicated connection to the backup
	sh    *replication.Shipper

	// Backup side.
	ap *replication.Applier
}

// mutatesState reports whether an rpcfs method changes server state and so
// must be replicated. Reads and name lookups are served from the primary's
// state alone.
//
// Of the client-cache lease protocol only acquires replicate: the backup's
// lease table then covers every grant that could outlive a failover, while
// releases and recall acks stay off the replication path on purpose — an
// ack must land while a recalling mutation still holds ordMu, so routing
// it through execReplicated would deadlock. The backup over-approximates
// the holder set and converges through its own expiry sweep.
func mutatesState(method string) bool {
	switch method {
	case rpcfs.MCreate, rpcfs.MOpen, rpcfs.MClose, rpcfs.MDelete,
		rpcfs.MWriteAt, rpcfs.MTruncate, rpcfs.MRegister, rpcfs.MUnregisterSys,
		ccache.MLeaseAcquire:
		return true
	}
	return false
}

// Role returns the server's current replication role.
func (s *Service) Role() Role { return Role(s.role.Load()) }

// BindEndpoint hands the Service the rpc endpoint serving it, so a backup
// can seed the endpoint's duplicate-request cache with the primary's
// replies. Call before serving traffic on a backup.
func (s *Service) BindEndpoint(ep *rpc.Endpoint) { s.ep.Store(ep) }

// ReplBarrier is the group-commit barrier hook of a replicated primary:
// it flushes the shipped stream, so every mutation in the synced batch is
// on the backup before any of them is acknowledged. A down stream does not
// fail the commit — the records are durable locally and the primary has
// already dropped the backup from the map — so the barrier always reports
// success; it exists to hold the ack until replication caught up.
func (s *Service) ReplBarrier() error {
	if r := s.repl; r != nil && r.sh != nil && s.Role() == RolePrimary {
		r.sh.Flush()
	}
	return nil
}

// checkServing refuses ordinary traffic on a server that is not the
// shard's primary. The error is retriable client-side — the router rebinds
// toward the current map and retries — and marked transient server-side so
// the endpoint's duplicate cache does not pin the refusal to the retry's
// sequence number: the same retransmission must execute once this server
// has promoted.
func (s *Service) checkServing() error {
	switch s.Role() {
	case RoleBackup, RoleFenced:
		return rpc.Transient(errors.New(notPrimaryMarker))
	}
	return nil
}

// execReplicated executes one owned rpcfs request and, on a replicated
// primary, ships successful mutations to the backup before returning —
// the reply is withheld until the backup confirms (or the stream goes
// down). The order lock serializes execute+append so the shipped stream
// is a serialization order of the shard's state machine.
func (s *Service) execReplicated(ctx context.Context, req rpc.Request) ([]byte, error) {
	r := s.repl
	if r == nil || r.sh == nil || s.Role() != RolePrimary || !mutatesState(req.Method) {
		return s.innerCtx(ctx, req.Method, req.Body)
	}
	// The group-commit span brackets execute + append + barrier; its
	// identity rides the replication record (in memory) so the shipper's
	// ship span — and, across the wire, the backup's apply — parent here.
	gctx, op := s.rec.StartOp(ctx, obs.LayerCluster, "group-commit")
	r.ordMu.Lock()
	out, err := s.innerCtx(gctx, req.Method, req.Body)
	if err != nil {
		// Failed mutations change nothing and are not shipped; a replay of
		// the retry fails identically on the backup.
		r.ordMu.Unlock()
		op.End(err)
		return out, err
	}
	seq, ok := r.sh.Append(replication.Rec{
		Client:  req.ClientID,
		CSeq:    req.Seq,
		Method:  req.Method,
		Body:    req.Body,
		Reply:   out,
		TraceID: op.Span().TraceID(),
		SpanID:  op.Span().SpanID(),
	})
	r.ordMu.Unlock()
	if ok {
		w0 := time.Now()
		r.sh.Wait(seq)
		s.rec.ValueHist(MetricReplLagNS).Record(time.Since(w0))
		if d := s.inj.Delay(PtReplAck); d > 0 {
			time.Sleep(d)
		}
	}
	op.End(nil)
	return out, nil
}

// handleReplApply replays one shipped batch on the backup. ctx carries
// the endpoint's serve span — the continuation of the primary's ship span
// when the batch arrived on a traced frame — so replayed mutations nest
// inside the originating trace.
func (s *Service) handleReplApply(ctx context.Context, body []byte) ([]byte, error) {
	r := s.repl
	if r == nil || r.ap == nil {
		return nil, errors.New("cluster: not a replication backup")
	}
	if s.Role() != RoleBackup {
		return nil, errors.New(promotedMarker)
	}
	s.touch()
	applied, err := r.ap.ApplyBatchCtx(ctx, body)
	if err != nil {
		return nil, err
	}
	return binary.BigEndian.AppendUint64(make([]byte, 0, 8), applied), nil
}

// handleReplHeartbeat quiets the backup's promotion watchdog.
func (s *Service) handleReplHeartbeat() ([]byte, error) {
	r := s.repl
	if r == nil || r.ap == nil {
		return nil, errors.New("cluster: not a replication backup")
	}
	if s.Role() != RoleBackup {
		return nil, errors.New(promotedMarker)
	}
	s.touch()
	return nil, nil
}

// touch records that the primary was heard from just now.
func (s *Service) touch() { s.lastHeard.Store(s.now().UnixNano()) }

// heartbeatLoop keeps the backup's watchdog quiet while the primary is
// idle. It exits once the stream is down or the primary is deposed — both
// terminal states for this pairing.
func (s *Service) heartbeatLoop() {
	defer s.wg.Done()
	r := s.repl
	t := time.NewTicker(r.ttl / 3)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		if s.Role() != RolePrimary || r.sh.Down() {
			return
		}
		out, err := r.bc.Call(MReplHeartbeat, nil)
		r.bc.ReleaseBody(out)
		if err != nil {
			if isPromoted(err) {
				s.stepDown()
			} else {
				r.sh.MarkDown(fmt.Errorf("cluster: heartbeat: %w", err))
			}
			return
		}
	}
}

// watchdogLoop promotes the backup once the primary has been silent for a
// full replication TTL. Silence only counts after the primary's first
// contact (lastHeard stays zero until then): a backup that has never heard
// from its primary is a pairing that is not live yet, not a dead shard.
func (s *Service) watchdogLoop() {
	defer s.wg.Done()
	r := s.repl
	t := time.NewTicker(r.ttl / 4)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		if s.Role() != RoleBackup {
			return
		}
		last := s.lastHeard.Load()
		if last == 0 {
			continue
		}
		gap := s.now().UnixNano() - last
		s.rec.Gauge(MetricReplHeartbeatGap).Set(gap)
		if gap >= int64(r.ttl) {
			s.promote()
			return
		}
	}
}

// promote flips the backup to primary: its map now names it as the shard's
// endpoint (no backup), at a higher version, so clients that refresh — or
// whose transports fail over — land here and are served.
func (s *Service) promote() {
	if !s.role.CompareAndSwap(int32(RoleBackup), int32(RolePrimary)) {
		return
	}
	silence := time.Duration(s.now().UnixNano() - s.lastHeard.Load())
	s.updateMap(func(m *Map) {
		m.Endpoints[s.shard] = s.self
		if s.shard < len(m.Backups) {
			m.Backups[s.shard] = ""
		}
	})
	s.rec.Eventf("promote", "shard %d: backup promoted after %v primary silence, map v%d", s.shard, silence, s.curVersion())
}

// stepDown fences a deposed primary: its backup has promoted itself, so
// this server stops serving and its map points at the successor.
func (s *Service) stepDown() {
	if !s.role.CompareAndSwap(int32(RolePrimary), int32(RoleFenced)) {
		return
	}
	s.updateMap(func(m *Map) {
		m.Endpoints[s.shard] = s.backupAddr
		if s.shard < len(m.Backups) {
			m.Backups[s.shard] = ""
		}
	})
	s.rec.Eventf("fence", "shard %d: deposed primary fenced, successor %s, map v%d", s.shard, s.backupAddr, s.curVersion())
}

// backupDown drops a lost backup from the map: the primary serves solo and
// clients stop considering the dead backup a failover target.
func (s *Service) backupDown() {
	s.updateMap(func(m *Map) {
		if s.shard < len(m.Backups) {
			m.Backups[s.shard] = ""
		}
	})
	s.rec.Eventf("solo", "shard %d: backup dropped from map, primary serving solo, map v%d", s.shard, s.curVersion())
}

// updateMap applies one mutation to the served shard map at a bumped
// version, re-encoding the cached reply body.
func (s *Service) updateMap(mutate func(*Map)) {
	s.mMu.Lock()
	defer s.mMu.Unlock()
	m := s.cur.Clone()
	mutate(&m)
	m.Version++
	s.cur = m
	s.mapBody = appendMap(make([]byte, 0, mapSize(m)), m)
}

// mapReply returns the cached encoded shard map.
func (s *Service) mapReply() []byte {
	s.mMu.RLock()
	defer s.mMu.RUnlock()
	return s.mapBody
}

// curVersion returns the served map's version.
func (s *Service) curVersion() uint64 {
	s.mMu.RLock()
	defer s.mMu.RUnlock()
	return s.cur.Version
}

// Map returns a copy of the currently served shard map (tests and the
// failover experiments inspect promotion through it).
func (s *Service) Map() Map {
	s.mMu.RLock()
	defer s.mMu.RUnlock()
	return s.cur.Clone()
}
