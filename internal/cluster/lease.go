package cluster

import (
	"sync"
	"time"
)

// LeaseTable tracks, per transaction holding network locks, which client
// owns it and when its lease expires. A lease is granted with the first
// successful acquire, extended by renewals, and dropped on release; a lease
// that reaches its expiry without a renewal means the owning client is dead
// or partitioned, and the sweeper breaks the transaction's locks so it
// aborts cleanly (§6.4's break machinery, repurposed for client liveness).
type LeaseTable struct {
	ttl time.Duration
	now func() time.Time

	mu     sync.Mutex
	leases map[uint64]*leaseEntry
}

type leaseEntry struct {
	client  uint64
	expires time.Time
}

// NewLeaseTable builds a table with the given lease duration. now is the
// clock; nil means time.Now (tests inject a fake).
func NewLeaseTable(ttl time.Duration, now func() time.Time) *LeaseTable {
	if now == nil {
		now = time.Now
	}
	return &LeaseTable{ttl: ttl, now: now, leases: make(map[uint64]*leaseEntry)}
}

// TTL returns the lease duration.
func (t *LeaseTable) TTL() time.Duration { return t.ttl }

// Grant leases txn to client, or extends the lease if client already holds
// it. ok is false when another live client holds the transaction — one
// transaction has exactly one owning client. created reports that this call
// made a new lease (rather than extending one), so a caller whose lock
// acquire is then denied can drop it again: the client only renews leases of
// transactions it was granted locks for, and a lingering lease from a denied
// acquire would make the sweeper break an innocent requester.
func (t *LeaseTable) Grant(client, txn uint64) (ok, created bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.leases[txn]
	if e == nil {
		t.leases[txn] = &leaseEntry{client: client, expires: t.now().Add(t.ttl)}
		return true, true
	}
	if e.client != client {
		return false, false
	}
	e.expires = t.now().Add(t.ttl)
	return true, false
}

// Renew extends client's lease on txn, reporting false when the lease does
// not exist or belongs to another client (it has expired and been swept, or
// was never granted) — the caller's transaction is no longer protected.
func (t *LeaseTable) Renew(client, txn uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.leases[txn]
	if e == nil || e.client != client {
		return false
	}
	e.expires = t.now().Add(t.ttl)
	return true
}

// Release drops txn's lease (transaction finished).
func (t *LeaseTable) Release(txn uint64) {
	t.mu.Lock()
	delete(t.leases, txn)
	t.mu.Unlock()
}

// ExpireDue removes and returns every transaction whose lease has expired.
func (t *LeaseTable) ExpireDue() []uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	var due []uint64
	for txn, e := range t.leases {
		if e.expires.Before(now) || e.expires.Equal(now) {
			due = append(due, txn)
			delete(t.leases, txn)
		}
	}
	return due
}

// Len returns the number of live leases.
func (t *LeaseTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.leases)
}
