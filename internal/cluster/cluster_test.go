package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fit"
	"repro/internal/lock"
	"repro/internal/rpc"
	"repro/internal/rpcfs"
)

func TestShardForPathColocation(t *testing.T) {
	n := 4
	base := ShardForPath("/a/b/x", n)
	for _, p := range []string{"/a/b/y", "/a/b/z", "/a/b/x"} {
		if got := ShardForPath(p, n); got != base {
			t.Fatalf("ShardForPath(%q) = %d, want %d (same directory must colocate)", p, got, base)
		}
	}
	if got := ShardForPath("/top", 1); got != 0 {
		t.Fatalf("single shard: got %d", got)
	}
	// Different directories should spread (not a hard guarantee per pair,
	// but across many directories every shard must be hit).
	hit := make(map[int]bool)
	for i := 0; i < 64; i++ {
		hit[ShardForPath(fmt.Sprintf("/dir%d/f", i), n)] = true
	}
	if len(hit) != n {
		t.Fatalf("64 directories hit only shards %v of %d", hit, n)
	}
}

func TestRoutedIDRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		shard int
		raw   uint64
	}{{0, 1}, {3, 42}, {7, 1 << 40}, {255, 0}} {
		routed := RoutedID(tc.shard, tc.raw)
		shard, raw := SplitID(routed)
		if shard != tc.shard || raw != tc.raw {
			t.Fatalf("SplitID(RoutedID(%d, %d)) = %d, %d", tc.shard, tc.raw, shard, raw)
		}
	}
}

func TestNotMineRoundTrip(t *testing.T) {
	err := NotMine(5, 9)
	home, ok := ParseNotMine(err)
	if !ok || home != 5 {
		t.Fatalf("ParseNotMine = %d, %v", home, ok)
	}
	// Wrapped in a service error, as it arrives at the client.
	serr := &rpc.ServiceError{Method: "fs.create", Message: err.Error()}
	home, ok = ParseNotMine(serr)
	if !ok || home != 5 {
		t.Fatalf("ParseNotMine(ServiceError) = %d, %v", home, ok)
	}
	if _, ok := ParseNotMine(fmt.Errorf("unrelated")); ok {
		t.Fatal("unrelated error parsed as redirect")
	}
	if _, ok := ParseNotMine(nil); ok {
		t.Fatal("nil error parsed as redirect")
	}
}

func TestMapCodecRoundTrip(t *testing.T) {
	m := Map{Version: 7, Endpoints: []string{"a:1", "b:2", "c:3"}}
	got, err := decodeMap(appendMap(nil, m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != m.Version || len(got.Endpoints) != 3 || got.Endpoints[2] != "c:3" {
		t.Fatalf("decodeMap = %+v", got)
	}
	if _, err := decodeMap([]byte{1, 2}); err == nil {
		t.Fatal("truncated map decoded")
	}
}

func TestLeaseTable(t *testing.T) {
	now := time.Unix(0, 0)
	tab := NewLeaseTable(100*time.Millisecond, func() time.Time { return now })
	if ok, created := tab.Grant(1, 10); !ok || !created {
		t.Fatalf("first grant: ok=%v created=%v", ok, created)
	}
	if ok, created := tab.Grant(1, 10); !ok || created {
		t.Fatalf("extending grant: ok=%v created=%v", ok, created)
	}
	if ok, _ := tab.Grant(2, 10); ok {
		t.Fatal("second client granted another client's txn")
	}
	if !tab.Renew(1, 10) {
		t.Fatal("owner renewal refused")
	}
	if tab.Renew(2, 10) {
		t.Fatal("non-owner renewal accepted")
	}
	now = now.Add(50 * time.Millisecond)
	if due := tab.ExpireDue(); len(due) != 0 {
		t.Fatalf("expired early: %v", due)
	}
	now = now.Add(60 * time.Millisecond)
	if due := tab.ExpireDue(); len(due) != 1 || due[0] != 10 {
		t.Fatalf("ExpireDue = %v, want [10]", due)
	}
	if tab.Renew(1, 10) {
		t.Fatal("renewal after expiry accepted")
	}
	// A released lease never expires.
	tab.Grant(1, 11)
	tab.Release(11)
	now = now.Add(time.Hour)
	if due := tab.ExpireDue(); len(due) != 0 {
		t.Fatalf("released lease expired: %v", due)
	}
}

// rig is an N-shard cluster on loopback TCP.
type rig struct {
	cores []*core.Cluster
	svcs  []*Service
	srvs  []*rpc.TCPServer
	m     Map
}

func newRig(t *testing.T, shards int, leaseTTL time.Duration) *rig {
	t.Helper()
	r := &rig{}
	lns := make([]net.Listener, shards)
	eps := make([]string, shards)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		eps[i] = ln.Addr().String()
	}
	r.m = Map{Version: 1, Endpoints: eps}
	for i := 0; i < shards; i++ {
		// A long LT keeps the lock manager's own deadlock timeout out of
		// the lease tests: a slow run (the race detector) must not break a
		// polling competitor before the lease machinery under test acts.
		c, err := core.New(core.Config{LT: 30 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		r.cores = append(r.cores, c)
		fsrv := &rpcfs.Server{Files: c.Files, Naming: c.Naming}
		svc, err := NewService(ServiceConfig{
			Shard:    i,
			Map:      r.m,
			Inner:    fsrv.Handler(),
			Locks:    c.Locks(),
			LeaseTTL: leaseTTL,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.svcs = append(r.svcs, svc)
		ep := rpc.NewEndpoint(svc.Handle)
		r.srvs = append(r.srvs, rpc.Serve(lns[i], ep))
	}
	t.Cleanup(func() {
		for i := range r.srvs {
			_ = r.srvs[i].Close()
			r.svcs[i].Close()
			_ = r.cores[i].Close()
		}
	})
	return r
}

func (r *rig) router(t *testing.T, clientID uint64) *Router {
	t.Helper()
	rt, err := NewRouter(RouterConfig{Endpoints: r.m.Endpoints, ClientID: clientID})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	return rt
}

func TestRouterFileOpsAcrossShards(t *testing.T) {
	r := newRig(t, 3, 0)
	rt := r.router(t, 100)
	m, err := agent.NewMachine(agent.MachineConfig{Naming: rt, Files: rt, DisableClientCache: true})
	if err != nil {
		t.Fatal(err)
	}
	p := m.NewProcess()
	fa := m.FileAgent()

	// Spread files over enough directories to land on every shard.
	type file struct {
		path string
		fd   int
		data []byte
	}
	var files []file
	shardsHit := make(map[int]bool)
	for i := 0; i < 12; i++ {
		path := fmt.Sprintf("/dir%d/f", i)
		fd, err := fa.Create(p, path, fit.Attributes{})
		if err != nil {
			t.Fatalf("Create %s: %v", path, err)
		}
		data := bytes.Repeat([]byte{byte('a' + i)}, 3000)
		if _, err := fa.PWrite(p, fd, 0, data); err != nil {
			t.Fatalf("PWrite %s: %v", path, err)
		}
		files = append(files, file{path, fd, data})
		shardsHit[ShardForPath(path, 3)] = true
	}
	if len(shardsHit) != 3 {
		t.Fatalf("test spread hit only shards %v", shardsHit)
	}
	for _, f := range files {
		got, err := fa.PRead(p, f.fd, 0, len(f.data))
		if err != nil || !bytes.Equal(got, f.data) {
			t.Fatalf("PRead %s mismatch: %v", f.path, err)
		}
		if err := fa.Close(p, f.fd); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen by name (routes through ResolvePath + routed ID).
	fd, err := fa.Open(p, files[0].path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fa.PRead(p, fd, 0, 10)
	if err != nil || !bytes.Equal(got, files[0].data[:10]) {
		t.Fatalf("reopened read mismatch: %v", err)
	}
	if err := fa.Close(p, fd); err != nil {
		t.Fatal(err)
	}
	// Delete spans naming and file service on the home shard.
	if err := fa.Delete(files[1].path); err != nil {
		t.Fatal(err)
	}
	if _, err := fa.Open(p, files[1].path); err == nil {
		t.Fatal("deleted file still resolvable")
	}
	// List fans out and merges: every /dirN shows up at the root.
	names, err := rt.List("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 11 { // 12 created, 1 deleted
		t.Fatalf("List / = %d names: %v", len(names), names)
	}
}

func TestServerRedirectsForeignPath(t *testing.T) {
	r := newRig(t, 3, 0)
	// Find a path homed on shard 1 and offer it to shard 0 directly.
	var path string
	for i := 0; ; i++ {
		path = fmt.Sprintf("/redir%d/f", i)
		if ShardForPath(path, 3) == 1 {
			break
		}
	}
	tr, err := rpc.DialTCP(r.m.Endpoints[0])
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	cl := &rpcfs.Client{C: rpc.NewClient(tr, 200, 5, nil)}
	_, err = cl.CreatePath(fit.Attributes{}, path)
	home, ok := ParseNotMine(err)
	if !ok || home != 1 {
		t.Fatalf("foreign create: err=%v home=%d ok=%v, want redirect to 1", err, home, ok)
	}
	// The router lands it on the right shard even with a scrambled notion
	// of shard homes (simulated by calling the home shard's redirect).
	rt := r.router(t, 201)
	if _, err := rt.CreatePath(fit.Attributes{}, path); err != nil {
		t.Fatalf("router create: %v", err)
	}
	if _, err := rt.ResolvePath(path); err != nil {
		t.Fatalf("router resolve: %v", err)
	}
}

func TestRouterResolveQueryFansOut(t *testing.T) {
	r := newRig(t, 3, 0)
	rt := r.router(t, 300)
	id, err := rt.CreatePath(fit.Attributes{}, "/fan/alpha")
	if err != nil {
		t.Fatal(err)
	}
	e, err := rt.Resolve(map[string]string{"path": "/fan/alpha", "type": "FILE"})
	if err != nil || e.SystemName != uint64(id) {
		t.Fatalf("Resolve by path = %+v, %v", e, err)
	}
	// A pathless query must fan out and still find exactly one match.
	e, err = rt.Resolve(map[string]string{"type": "FILE"})
	if err != nil || e.SystemName != uint64(id) {
		t.Fatalf("pathless Resolve = %+v, %v", e, err)
	}
	if _, err := rt.Resolve(map[string]string{"type": "NOPE"}); err == nil {
		t.Fatal("no-match query resolved")
	}
}

func TestNetworkLockLeaseExpiry(t *testing.T) {
	const ttl = 60 * time.Millisecond
	r := newRig(t, 1, ttl)
	rt := r.router(t, 400)

	inj := fault.NewInjector(1)
	lc1 := NewLockClient(rt.Lock(0), 401, ttl, nil)
	defer lc1.Close()
	lc2 := NewLockClient(rt.Lock(0), 402, ttl, inj)
	defer lc2.Close()

	item := lock.ItemID{File: 1, Offset: 0, Length: 100}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// Txn 1 takes a write lock; txn 2's conflicting acquire polls.
	if err := lc1.Acquire(ctx, 1, 1, lock.Record, item, lock.IWrite); err != nil {
		t.Fatal(err)
	}
	short, cancelShort := context.WithTimeout(ctx, 3*ttl)
	err := lc2.Acquire(short, 2, 2, lock.Record, item, lock.IWrite)
	cancelShort()
	if err == nil {
		t.Fatal("conflicting acquire granted while lease held")
	}

	// Client 1 goes silent: its lease expires, the sweeper breaks txn 1,
	// and txn 2's acquire proceeds within a few lease durations.
	lc1.StopRenewing(1)
	if err := lc2.Acquire(ctx, 2, 2, lock.Record, item, lock.IWrite); err != nil {
		t.Fatalf("acquire after lease expiry: %v", err)
	}
	if !r.cores[0].Locks().Broken(1) {
		t.Fatal("dead client's txn not marked broken")
	}
	if err := lc2.Release(2); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkLockPartitionedRenewals(t *testing.T) {
	const ttl = 60 * time.Millisecond
	r := newRig(t, 1, ttl)
	rt := r.router(t, 500)

	inj := fault.NewInjector(1)
	lc1 := NewLockClient(rt.Lock(0), 501, ttl, inj)
	defer lc1.Close()
	lc2 := NewLockClient(rt.Lock(0), 502, ttl, nil)
	defer lc2.Close()

	item := lock.ItemID{File: 2, Offset: 0, Length: 10}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := lc1.Acquire(ctx, 10, 1, lock.Record, item, lock.IWrite); err != nil {
		t.Fatal(err)
	}
	// Partition client 1: every renewal from now on is dropped on the
	// floor, so the server sees silence and breaks the lease.
	inj.Arm(PtLeaseRenew, fault.Action{Kind: fault.KindError, Times: -1})
	if err := lc2.Acquire(ctx, 11, 2, lock.Record, item, lock.IWrite); err != nil {
		t.Fatalf("acquire after partition: %v", err)
	}
	if inj.Fired(PtLeaseRenew) == 0 {
		t.Fatal("renewal fault never consulted")
	}
	if !r.cores[0].Locks().Broken(10) {
		t.Fatal("partitioned client's txn not broken")
	}
}
