package cluster

import "testing"

func TestParseShard(t *testing.T) {
	cases := []struct {
		in            string
		shard, shards int
		wantErr       bool
	}{
		{"", 0, 1, false},
		{"0/1", 0, 1, false},
		{"0/3", 0, 3, false},
		{"2/3", 2, 3, false},
		{"3/3", 0, 0, true},
		{"-1/3", 0, 0, true},
		{"1/0", 0, 0, true},
		{"x/3", 0, 0, true},
		{"2", 0, 0, true},
	}
	for _, c := range cases {
		shard, shards, err := ParseShard(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseShard(%q): want error, got %d/%d", c.in, shard, shards)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseShard(%q): %v", c.in, err)
			continue
		}
		if shard != c.shard || shards != c.shards {
			t.Errorf("ParseShard(%q) = %d/%d, want %d/%d", c.in, shard, shards, c.shard, c.shards)
		}
	}
}
