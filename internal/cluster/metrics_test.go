package cluster

import (
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fit"
	"repro/internal/lock"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/rpcfs"
)

// TestMetricNamesAudit statically audits the metric registry: every name
// the cluster and replication layers record must be listed exactly once and
// follow the cluster./repl. naming scheme the fleet scraper documents.
func TestMetricNamesAudit(t *testing.T) {
	seen := map[string]bool{}
	for _, name := range MetricNames {
		if name == "" {
			t.Fatal("empty metric name in MetricNames")
		}
		if seen[name] {
			t.Fatalf("duplicate metric name %q", name)
		}
		seen[name] = true
		if !strings.HasPrefix(name, "cluster.") && !strings.HasPrefix(name, "repl.") {
			t.Fatalf("metric %q outside the cluster./repl. namespaces", name)
		}
		if strings.HasSuffix(name, "_ns") {
			continue // latency histograms; counters and gauges below
		}
	}
	// The registry must cover both server- and client-side families.
	for _, want := range []string{"cluster.lease.", "cluster.router.", "cluster.repl.", "repl."} {
		found := false
		for _, name := range MetricNames {
			if strings.HasPrefix(name, want) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no metric under the %q family", want)
		}
	}
}

// obsRig is newRig with a recorder wired into every layer that records
// cluster metrics: the service, the router, and the lock clients.
func newObsRig(t *testing.T, shards int, leaseTTL time.Duration, rec *obs.Recorder) *rig {
	t.Helper()
	r := &rig{}
	lns := make([]net.Listener, shards)
	eps := make([]string, shards)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		eps[i] = ln.Addr().String()
	}
	r.m = Map{Version: 1, Endpoints: eps}
	for i := 0; i < shards; i++ {
		c, err := core.New(core.Config{LT: 30 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		r.cores = append(r.cores, c)
		fsrv := &rpcfs.Server{Files: c.Files, Naming: c.Naming}
		svc, err := NewService(ServiceConfig{
			Shard:    i,
			Map:      r.m,
			Inner:    fsrv.Handler(),
			Locks:    c.Locks(),
			LeaseTTL: leaseTTL,
			Obs:      rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.svcs = append(r.svcs, svc)
		r.srvs = append(r.srvs, rpc.Serve(lns[i], rpc.NewEndpoint(svc.Handle)))
	}
	t.Cleanup(func() {
		for i := range r.srvs {
			_ = r.srvs[i].Close()
			r.svcs[i].Close()
			_ = r.cores[i].Close()
		}
	})
	return r
}

// auditRecorded asserts that every cluster./repl. name the flow recorded is
// a registered MetricNames entry — the dynamic half of the audit: code
// cannot invent a metric the registry (and so the scraper docs) missed.
func auditRecorded(t *testing.T, rec *obs.Recorder) {
	t.Helper()
	registered := map[string]bool{}
	for _, name := range MetricNames {
		registered[name] = true
	}
	p := rec.Profile()
	for name := range p.Gauges {
		if (strings.HasPrefix(name, "cluster.") || strings.HasPrefix(name, "repl.")) && !registered[name] {
			t.Errorf("gauge %q recorded but missing from MetricNames", name)
		}
	}
	for _, v := range p.Values {
		if (strings.HasPrefix(v.Name, "cluster.") || strings.HasPrefix(v.Name, "repl.")) && !registered[v.Name] {
			t.Errorf("value histogram %q recorded but missing from MetricNames", v.Name)
		}
	}
}

// TestLeaseMetricsRecorded drives the full lock-lease life cycle — grant,
// background renewals, explicit release, and a sweeper break — and checks
// each transition shows up under its registered counter, the renew
// round-trip histogram fills, and the break lands in the event log.
func TestLeaseMetricsRecorded(t *testing.T) {
	const ttl = 60 * time.Millisecond
	rec := obs.New()
	r := newObsRig(t, 1, ttl, rec)
	rt, err := NewRouter(RouterConfig{Endpoints: r.m.Endpoints, ClientID: 900, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)

	lc1 := NewLockClient(rt.Lock(0), 901, ttl, nil)
	defer lc1.Close()
	lc1.SetObs(rec)
	lc2 := NewLockClient(rt.Lock(0), 902, ttl, nil)
	defer lc2.Close()
	lc2.SetObs(rec)

	item := lock.ItemID{File: 1, Offset: 0, Length: 100}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := lc1.Acquire(ctx, 1, 1, lock.Record, item, lock.IWrite); err != nil {
		t.Fatal(err)
	}
	// Let the renewer run a few cycles so the renew counter and the
	// renew-latency histogram both fill.
	time.Sleep(3 * ttl)
	// Client 1 goes silent; the sweeper breaks its lease and client 2 gets
	// the lock, which it then releases cleanly.
	lc1.StopRenewing(1)
	if err := lc2.Acquire(ctx, 2, 2, lock.Record, item, lock.IWrite); err != nil {
		t.Fatalf("acquire after expiry: %v", err)
	}
	if err := lc2.Release(2); err != nil {
		t.Fatal(err)
	}

	p := rec.Profile()
	for _, want := range []struct {
		name string
		min  int64
	}{
		{MetricLeaseGrants, 2},   // lc1's lease + lc2's lease
		{MetricLeaseRenews, 1},   // lc1 renewed at least once before going silent
		{MetricLeaseReleases, 1}, // lc2's explicit release
		{MetricLeaseExpired, 1},  // the sweeper broke lc1's lease
	} {
		if got := p.Gauges[want.name]; got < want.min {
			t.Errorf("%s = %d, want >= %d", want.name, got, want.min)
		}
	}
	var renewHist bool
	for _, v := range p.Values {
		if v.Name == MetricLeaseRenewNS && v.Count > 0 {
			renewHist = true
		}
	}
	if !renewHist {
		t.Errorf("no %s samples recorded", MetricLeaseRenewNS)
	}
	var broke bool
	for _, e := range rec.Events() {
		if e.Name == "lease-break" {
			broke = true
		}
	}
	if !broke {
		t.Error("sweeper did not log a lease-break event")
	}
	auditRecorded(t, rec)
}

// TestRouterRedirectMetricsRecorded scrambles a router's notion of shard
// homes (endpoints swapped) so every path op draws a not-mine redirect, and
// checks the redirect counter and map-refresh histogram fill — and that
// both names are registered.
func TestRouterRedirectMetricsRecorded(t *testing.T) {
	srvRec, rtRec := obs.New(), obs.New()
	r := newObsRig(t, 2, 0, srvRec)
	scrambled := []string{r.m.Endpoints[1], r.m.Endpoints[0]}
	rt, err := NewRouter(RouterConfig{Endpoints: scrambled, ClientID: 910, Obs: rtRec})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)

	// Every create lands on the wrong server and bounces; the map refresh
	// the redirect triggers cannot fix the swapped table (same version), so
	// the op ultimately fails — the point is the telemetry trail.
	_, err = rt.CreatePath(fit.Attributes{}, fmt.Sprintf("/audit%d/f", 0))
	if err == nil {
		// A same-version map cannot be installed, but if the server's map
		// happened to supersede, the create legitimately succeeds. Either
		// way at least one redirect was followed first.
		t.Log("create succeeded after redirect")
	}
	p := rtRec.Profile()
	if p.Gauges[MetricRouterRedirects] < 1 {
		t.Errorf("%s = %d, want >= 1", MetricRouterRedirects, p.Gauges[MetricRouterRedirects])
	}
	var refresh bool
	for _, v := range p.Values {
		if v.Name == MetricRouterMapRefresh && v.Count > 0 {
			refresh = true
		}
	}
	if !refresh {
		t.Errorf("no %s samples recorded", MetricRouterMapRefresh)
	}
	auditRecorded(t, rtRec)
	auditRecorded(t, srvRec)
}
