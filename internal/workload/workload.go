// Package workload provides the deterministic workload generators the
// experiment harness drives the facility with: file-size distributions,
// read/write operation mixes, and transaction mixes with tunable contention
// and deadlock-prone access patterns.
//
// All generators are seeded; the same seed reproduces the same workload.
package workload

import (
	"math"
	"math/rand"
)

// SizeDist draws file sizes in bytes.
type SizeDist interface {
	Next(rng *rand.Rand) int
}

// Fixed always returns N bytes.
type Fixed struct{ N int }

// Next implements SizeDist.
func (f Fixed) Next(*rand.Rand) int { return f.N }

// Uniform draws uniformly from [Min, Max].
type Uniform struct{ Min, Max int }

// Next implements SizeDist.
func (u Uniform) Next(rng *rand.Rand) int {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + rng.Intn(u.Max-u.Min+1)
}

// Exponential draws sizes with the given mean (clamped to [1, Cap]); file
// sizes in 1990s traces are strongly skewed toward small files.
type Exponential struct {
	Mean int
	Cap  int
}

// Next implements SizeDist.
func (e Exponential) Next(rng *rand.Rand) int {
	n := int(rng.ExpFloat64() * float64(e.Mean))
	if n < 1 {
		n = 1
	}
	if e.Cap > 0 && n > e.Cap {
		n = e.Cap
	}
	return n
}

// OfficeFiles approximates the era's measured file-size profile: ~80% of
// files under 10 KB, a long tail up to ~1 MB.
func OfficeFiles() SizeDist { return officeDist{} }

type officeDist struct{}

func (officeDist) Next(rng *rand.Rand) int {
	switch p := rng.Float64(); {
	case p < 0.5:
		return 1 + rng.Intn(4*1024) // half the files under 4 KB
	case p < 0.8:
		return 4*1024 + rng.Intn(12*1024)
	case p < 0.95:
		return 16*1024 + rng.Intn(112*1024)
	default:
		return 128*1024 + rng.Intn(896*1024)
	}
}

// Access is one generated file operation.
type Access struct {
	// Read is true for a read, false for a write.
	Read bool
	// Offset and Length select the byte range.
	Offset int64
	Length int
}

// AccessGen generates operations over a file of the given size.
type AccessGen struct {
	// FileSize bounds the offsets.
	FileSize int64
	// ReadFrac is the fraction of reads (e.g. 0.8 for the classic 80/20).
	ReadFrac float64
	// OpSize is the bytes per operation.
	OpSize int
	// Sequential makes offsets advance linearly; otherwise uniform random.
	Sequential bool

	cursor int64
}

// Next draws the next access.
func (g *AccessGen) Next(rng *rand.Rand) Access {
	a := Access{
		Read:   rng.Float64() < g.ReadFrac,
		Length: g.OpSize,
	}
	if g.Sequential {
		if g.cursor+int64(g.OpSize) > g.FileSize {
			g.cursor = 0
		}
		a.Offset = g.cursor
		g.cursor += int64(g.OpSize)
	} else {
		span := g.FileSize - int64(g.OpSize)
		if span <= 0 {
			a.Offset = 0
		} else {
			a.Offset = rng.Int63n(span)
		}
	}
	return a
}

// ItemChooser selects data items under a contention model.
type ItemChooser struct {
	// Items is the number of distinct items.
	Items int
	// Theta skews selection: 0 is uniform, higher values concentrate
	// accesses on few hot items (Zipf-like, E7's contention knob).
	Theta float64
}

// Choose draws an item index in [0, Items).
func (c ItemChooser) Choose(rng *rand.Rand) int {
	if c.Items <= 1 {
		return 0
	}
	if c.Theta <= 0 {
		return rng.Intn(c.Items)
	}
	// Inverse-CDF Zipf approximation: rank ~ u^(1/(1-theta)) scaled.
	u := rng.Float64()
	r := math.Pow(u, 1.0/(1.0-math.Min(c.Theta, 0.99)))
	idx := int(r * float64(c.Items))
	if idx >= c.Items {
		idx = c.Items - 1
	}
	return idx
}

// TxnSpec describes a transaction workload (experiment E7).
type TxnSpec struct {
	// OpsPerTxn is the number of read/write operations per transaction.
	OpsPerTxn int
	// UpdateBytes is the size of each update.
	UpdateBytes int
	// ReadFrac is the fraction of reads within a transaction.
	ReadFrac float64
	// Items and Theta configure the contention model.
	Items int
	Theta float64
	// ItemBytes is the byte footprint of one item in the shared file.
	ItemBytes int
}

// TxnOp is one operation within a generated transaction.
type TxnOp struct {
	Read   bool
	Item   int
	Offset int64
	Length int
}

// NextTxn draws one transaction's operation list.
func (s TxnSpec) NextTxn(rng *rand.Rand) []TxnOp {
	chooser := ItemChooser{Items: s.Items, Theta: s.Theta}
	ops := make([]TxnOp, 0, s.OpsPerTxn)
	for i := 0; i < s.OpsPerTxn; i++ {
		item := chooser.Choose(rng)
		length := s.UpdateBytes
		if length > s.ItemBytes {
			length = s.ItemBytes
		}
		ops = append(ops, TxnOp{
			Read:   rng.Float64() < s.ReadFrac,
			Item:   item,
			Offset: int64(item * s.ItemBytes),
			Length: length,
		})
	}
	return ops
}

// DeadlockPair returns the two opposite-order lock sequences of the classic
// two-item deadlock (experiment E9): transaction A touches item x then y,
// transaction B touches y then x.
func DeadlockPair(x, y int) (a, b []int) {
	return []int{x, y}, []int{y, x}
}

// FileSet generates a population of file sizes.
func FileSet(dist SizeDist, count int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, count)
	for i := range out {
		out[i] = dist.Next(rng)
	}
	return out
}
