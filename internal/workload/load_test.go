package workload

import (
	"sync"
	"testing"

	"repro/internal/obs"
)

// memAgent is an in-memory LoadAgent that counts operations.
type memAgent struct {
	mu   sync.Mutex
	data []byte
	ops  int
}

func (a *memAgent) ReadAt(off int64, n int) ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ops++
	end := off + int64(n)
	if end > int64(len(a.data)) {
		end = int64(len(a.data))
	}
	return a.data[off:end], nil
}

func (a *memAgent) WriteAt(off int64, data []byte) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ops++
	copy(a.data[off:], data)
	return len(data), nil
}

func TestRunClosedLoop(t *testing.T) {
	const agents, ops = 8, 50
	las := make([]LoadAgent, agents)
	mems := make([]*memAgent, agents)
	for i := range las {
		mems[i] = &memAgent{data: make([]byte, 1<<16)}
		las[i] = mems[i]
	}
	hist := &obs.Histogram{}
	res, err := RunClosedLoop(LoadConfig{
		OpsPerAgent: ops,
		ReadFrac:    0.7,
		OpSize:      512,
		FileSize:    1 << 16,
		Seed:        42,
		Latency:     hist,
	}, las)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != agents*ops {
		t.Fatalf("Ops = %d, want %d", res.Ops, agents*ops)
	}
	if res.Bytes != int64(agents*ops*512) {
		t.Fatalf("Bytes = %d", res.Bytes)
	}
	for i, m := range mems {
		if m.ops != ops {
			t.Fatalf("agent %d ran %d ops, want %d", i, m.ops, ops)
		}
	}
	if res.OpsPerSec() <= 0 {
		t.Fatalf("OpsPerSec = %f", res.OpsPerSec())
	}
	if hist.Count() != int64(agents*ops) {
		t.Fatalf("latency samples = %d, want %d", hist.Count(), agents*ops)
	}
}

func TestRunClosedLoopDeterministicStreams(t *testing.T) {
	// Same seed, same per-agent operation streams: two runs over recording
	// agents must observe identical access sequences.
	type rec struct {
		mu   sync.Mutex
		seen []int64
	}
	run := func() []int64 {
		r := &rec{}
		a := loadAgentFunc{
			read: func(off int64, n int) ([]byte, error) {
				r.mu.Lock()
				r.seen = append(r.seen, off)
				r.mu.Unlock()
				return make([]byte, n), nil
			},
			write: func(off int64, data []byte) (int, error) {
				r.mu.Lock()
				r.seen = append(r.seen, -off)
				r.mu.Unlock()
				return len(data), nil
			},
		}
		if _, err := RunClosedLoop(LoadConfig{
			OpsPerAgent: 40, ReadFrac: 0.5, OpSize: 256, FileSize: 1 << 14, Seed: 7,
		}, []LoadAgent{a}); err != nil {
			t.Fatal(err)
		}
		return r.seen
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at op %d: %d vs %d", i, a[i], b[i])
		}
	}
}

type loadAgentFunc struct {
	read  func(off int64, n int) ([]byte, error)
	write func(off int64, data []byte) (int, error)
}

func (f loadAgentFunc) ReadAt(off int64, n int) ([]byte, error)  { return f.read(off, n) }
func (f loadAgentFunc) WriteAt(off int64, d []byte) (int, error) { return f.write(off, d) }

func TestRunClosedLoopRejectsBadConfig(t *testing.T) {
	if _, err := RunClosedLoop(LoadConfig{}, nil); err == nil {
		t.Fatal("zero config accepted")
	}
}

// memMulti is an in-memory MultiAgent: a shared slice-per-file store.
type memMulti struct {
	mu    sync.Mutex
	files [][]byte
}

func (m *memMulti) ReadFileAt(file int, off int64, n int) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[file]
	if off >= int64(len(f)) {
		return nil, nil
	}
	end := off + int64(n)
	if end > int64(len(f)) {
		end = int64(len(f))
	}
	return append([]byte(nil), f[off:end]...), nil
}

func (m *memMulti) WriteFileAt(file int, off int64, data []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if need := off + int64(len(data)); need > int64(len(m.files[file])) {
		m.files[file] = append(m.files[file], make([]byte, need-int64(len(m.files[file])))...)
	}
	copy(m.files[file][off:], data)
	return len(data), nil
}

// TestRunMultiTenantZipfianHotSpot pins the multi-tenant mode's contract:
// all operations complete, per-file counts sum to the total, and a skewed
// run concentrates far more traffic on its hottest file than a uniform one.
func TestRunMultiTenantZipfianHotSpot(t *testing.T) {
	run := func(theta float64) MultiTenantResult {
		store := &memMulti{files: make([][]byte, 20)}
		for i := range store.files {
			store.files[i] = make([]byte, 1<<14)
		}
		agents := make([]MultiAgent, 4)
		for i := range agents {
			agents[i] = store
		}
		res, err := RunMultiTenant(MultiTenantConfig{
			LoadConfig: LoadConfig{OpsPerAgent: 500, ReadFrac: 0.9, OpSize: 128, FileSize: 1 << 14, Seed: 7},
			Files:      20,
			Theta:      theta,
		}, agents)
		if err != nil {
			t.Fatalf("theta %.1f: %v", theta, err)
		}
		return res
	}
	uniform, hot := run(0), run(0.95)
	for name, res := range map[string]MultiTenantResult{"uniform": uniform, "hot": hot} {
		if res.Ops != 2000 {
			t.Fatalf("%s: ops = %d, want 2000", name, res.Ops)
		}
		var sum int64
		for _, n := range res.FileOps {
			sum += n
		}
		if sum != int64(res.Ops) {
			t.Fatalf("%s: file ops sum %d != %d", name, sum, res.Ops)
		}
	}
	if hot.HotFrac() < 2*uniform.HotFrac() {
		t.Fatalf("hot spot did not form: hot %.3f vs uniform %.3f", hot.HotFrac(), uniform.HotFrac())
	}

	if _, err := RunMultiTenant(MultiTenantConfig{}, nil); err == nil {
		t.Fatal("zero config accepted")
	}
}
