package workload

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// slowAgent serves each operation in a fixed time, so the open loop's
// offered-vs-completed gap is predictable.
type slowAgent struct {
	memAgent
	service time.Duration
}

func (a *slowAgent) ReadAt(off int64, n int) ([]byte, error) {
	time.Sleep(a.service)
	return a.memAgent.ReadAt(off, n)
}

func (a *slowAgent) WriteAt(off int64, data []byte) (int, error) {
	time.Sleep(a.service)
	return a.memAgent.WriteAt(off, data)
}

func TestRunOpenLoopMeetsOfferedRate(t *testing.T) {
	// 4 agents, fast service, modest rate: the schedule should be met and
	// every offered operation completed.
	las := make([]LoadAgent, 4)
	for i := range las {
		las[i] = &memAgent{data: make([]byte, 1<<16)}
	}
	cfg := LoadConfig{ReadFrac: 0.5, OpSize: 512, FileSize: 1 << 16, Seed: 1}
	res, err := RunOpenLoop(cfg, 400, 250*time.Millisecond, las)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != res.Offered {
		t.Fatalf("uncontended open loop completed %d of %d offered", res.Ops, res.Offered)
	}
	if res.OfferedRate != 400 {
		t.Fatalf("OfferedRate = %v", res.OfferedRate)
	}
}

func TestRunOpenLoopOverloadShowsQueueing(t *testing.T) {
	// One agent, 5ms service time, offered 1000 ops/sec: capacity is
	// ~200/s, so latency measured from scheduled arrival must blow far
	// past the service time as the FIFO backs up.
	h := &obs.Histogram{}
	la := &slowAgent{memAgent: memAgent{data: make([]byte, 1<<16)}, service: 5 * time.Millisecond}
	cfg := LoadConfig{ReadFrac: 1, OpSize: 512, FileSize: 1 << 16, Seed: 1, Latency: h}
	res, err := RunOpenLoop(cfg, 1000, 300*time.Millisecond, []LoadAgent{la})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops >= res.Offered {
		t.Fatalf("overloaded agent kept up: %d of %d", res.Ops, res.Offered)
	}
	// p90 queueing delay should dwarf one service time.
	if p90 := h.Quantile(0.9); p90 < 20*time.Millisecond {
		t.Fatalf("p90 latency %v under overload, want >> 5ms service time", p90)
	}
}

func TestRunOpenLoopRejectsBadConfig(t *testing.T) {
	la := []LoadAgent{&memAgent{data: make([]byte, 64)}}
	cfg := LoadConfig{ReadFrac: 1, OpSize: 16, FileSize: 64}
	if _, err := RunOpenLoop(cfg, 0, time.Second, la); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := RunOpenLoop(cfg, 100, 0, la); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := RunOpenLoop(cfg, 100, time.Second, nil); err == nil {
		t.Fatal("no agents accepted")
	}
}
