package workload

// Open-loop load generation: operations arrive on a fixed schedule whether
// or not earlier ones have completed, which is what distinguishes a latency
// measurement under overload from one under self-throttling. A closed loop
// can never show queueing collapse — its arrival rate falls to match
// service capacity — so saturation experiments (E20/E21's overload cells)
// drive the open loop instead and measure latency from each operation's
// *scheduled* arrival, making queueing delay visible.

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// OpenLoopResult extends the closed-loop summary with the offered schedule:
// Offered is how many operations the schedule called for; Ops is how many
// completed. Under overload each agent's FIFO falls behind, and the gap
// between offered rate and OpsPerSec is the overload signature.
type OpenLoopResult struct {
	LoadResult
	// Offered is the number of operations the arrival schedule issued.
	Offered int
	// OfferedRate is the configured aggregate arrival rate (ops/sec).
	OfferedRate float64
}

// RunOpenLoop drives the agents with a fixed aggregate arrival rate
// (ops/sec, spread evenly across agents with per-agent phase offsets) for
// the given duration. Each agent is a FIFO server of its own schedule: an
// operation whose arrival time has passed starts immediately after its
// predecessor, and its latency is measured from the scheduled arrival, so
// time spent queued behind a slow system counts. cfg.OpsPerAgent is
// ignored; the schedule derives from rate and duration.
func RunOpenLoop(cfg LoadConfig, rate float64, duration time.Duration, agents []LoadAgent) (OpenLoopResult, error) {
	if cfg.OpSize <= 0 || cfg.FileSize <= 0 || rate <= 0 || duration <= 0 || len(agents) == 0 {
		return OpenLoopResult{}, fmt.Errorf("workload: bad open-loop config (rate=%v duration=%v)", rate, duration)
	}
	// Per-agent inter-arrival gap; agent i's k-th operation is scheduled at
	// start + phase(i) + k*gap.
	gap := time.Duration(float64(len(agents)) / rate * float64(time.Second))
	if gap <= 0 {
		gap = time.Nanosecond
	}
	perAgent := int(duration / gap)
	if perAgent <= 0 {
		return OpenLoopResult{}, fmt.Errorf("workload: duration %v shorter than inter-arrival gap %v", duration, gap)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(agents))
	done := make([]int, len(agents))
	start := time.Now()
	deadline := start.Add(duration)
	for i, a := range agents {
		wg.Add(1)
		go func(i int, a LoadAgent) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
			gen := AccessGen{
				FileSize:   cfg.FileSize,
				ReadFrac:   cfg.ReadFrac,
				OpSize:     cfg.OpSize,
				Sequential: cfg.Sequential,
			}
			phase := gap * time.Duration(i) / time.Duration(len(agents))
			buf := make([]byte, cfg.OpSize)
			for op := 0; op < perAgent; op++ {
				// The run ends at the deadline: operations still queued
				// behind a backed-up FIFO stay offered-but-uncompleted,
				// which is the overload signature.
				if !time.Now().Before(deadline) {
					return
				}
				scheduled := start.Add(phase + gap*time.Duration(op))
				if wait := time.Until(scheduled); wait > 0 {
					time.Sleep(wait)
				}
				acc := gen.Next(rng)
				var err error
				if acc.Read {
					_, err = a.ReadAt(acc.Offset, acc.Length)
				} else {
					_, err = a.WriteAt(acc.Offset, buf[:acc.Length])
				}
				if err != nil {
					errs[i] = fmt.Errorf("workload: agent %d op %d: %w", i, op, err)
					return
				}
				// Latency from scheduled arrival, not operation start:
				// queueing behind the agent's FIFO is part of the cost.
				cfg.Latency.Record(time.Since(scheduled))
				done[i]++
			}
		}(i, a)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return OpenLoopResult{}, err
		}
	}
	ops := 0
	for _, n := range done {
		ops += n
	}
	return OpenLoopResult{
		LoadResult: LoadResult{
			Agents: len(agents),
			Ops:    ops,
			Bytes:  int64(ops) * int64(cfg.OpSize),
			Wall:   wall,
		},
		Offered:     perAgent * len(agents),
		OfferedRate: rate,
	}, nil
}
