package workload

import (
	"math/rand"
	"testing"
)

func TestFixedAndUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := (Fixed{N: 42}).Next(rng); got != 42 {
		t.Fatalf("Fixed = %d", got)
	}
	u := Uniform{Min: 10, Max: 20}
	for i := 0; i < 100; i++ {
		got := u.Next(rng)
		if got < 10 || got > 20 {
			t.Fatalf("Uniform out of range: %d", got)
		}
	}
	if got := (Uniform{Min: 5, Max: 5}).Next(rng); got != 5 {
		t.Fatalf("degenerate Uniform = %d", got)
	}
}

func TestExponentialClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := Exponential{Mean: 1000, Cap: 5000}
	for i := 0; i < 1000; i++ {
		got := e.Next(rng)
		if got < 1 || got > 5000 {
			t.Fatalf("Exponential out of range: %d", got)
		}
	}
}

func TestOfficeFilesSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := OfficeFiles()
	small := 0
	const n = 5000
	for i := 0; i < n; i++ {
		sz := d.Next(rng)
		if sz <= 0 {
			t.Fatalf("non-positive size %d", sz)
		}
		if sz < 16*1024 {
			small++
		}
	}
	if frac := float64(small) / n; frac < 0.6 {
		t.Fatalf("only %.0f%% of office files under 16KB; distribution should skew small", frac*100)
	}
}

func TestAccessGenSequential(t *testing.T) {
	g := &AccessGen{FileSize: 100, OpSize: 30, ReadFrac: 1, Sequential: true}
	rng := rand.New(rand.NewSource(4))
	offs := []int64{}
	for i := 0; i < 5; i++ {
		offs = append(offs, g.Next(rng).Offset)
	}
	want := []int64{0, 30, 60, 0, 30} // wraps before exceeding the file
	for i := range want {
		if offs[i] != want[i] {
			t.Fatalf("sequential offsets = %v, want %v", offs, want)
		}
	}
}

func TestAccessGenRandomInBounds(t *testing.T) {
	g := &AccessGen{FileSize: 10000, OpSize: 100, ReadFrac: 0.5}
	rng := rand.New(rand.NewSource(5))
	reads := 0
	for i := 0; i < 1000; i++ {
		a := g.Next(rng)
		if a.Offset < 0 || a.Offset+int64(a.Length) > 10000 {
			t.Fatalf("access out of bounds: %+v", a)
		}
		if a.Read {
			reads++
		}
	}
	if reads < 350 || reads > 650 {
		t.Fatalf("read fraction skewed: %d/1000", reads)
	}
}

func TestItemChooserUniformVsSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	uniform := ItemChooser{Items: 100, Theta: 0}
	hot := ItemChooser{Items: 100, Theta: 0.9}
	const n = 20000
	uniTop, hotTop := 0, 0
	for i := 0; i < n; i++ {
		if uniform.Choose(rng) < 10 {
			uniTop++
		}
		if hot.Choose(rng) < 10 {
			hotTop++
		}
	}
	if hotTop <= uniTop*2 {
		t.Fatalf("theta=0.9 not hotter than uniform: hot=%d uni=%d", hotTop, uniTop)
	}
	// Bounds.
	for i := 0; i < 1000; i++ {
		if got := hot.Choose(rng); got < 0 || got >= 100 {
			t.Fatalf("choice out of range: %d", got)
		}
	}
	if got := (ItemChooser{Items: 1}).Choose(rng); got != 0 {
		t.Fatalf("single-item chooser = %d", got)
	}
}

func TestTxnSpec(t *testing.T) {
	spec := TxnSpec{OpsPerTxn: 8, UpdateBytes: 64, ReadFrac: 0.5, Items: 10, ItemBytes: 128}
	rng := rand.New(rand.NewSource(7))
	ops := spec.NextTxn(rng)
	if len(ops) != 8 {
		t.Fatalf("ops = %d", len(ops))
	}
	for _, op := range ops {
		if op.Item < 0 || op.Item >= 10 {
			t.Fatalf("item out of range: %+v", op)
		}
		if op.Offset != int64(op.Item*128) {
			t.Fatalf("offset mismatch: %+v", op)
		}
		if op.Length != 64 {
			t.Fatalf("length = %d", op.Length)
		}
	}
	// Update larger than the item clamps.
	spec.UpdateBytes = 1024
	for _, op := range spec.NextTxn(rng) {
		if op.Length != 128 {
			t.Fatalf("unclamped length %d", op.Length)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := FileSet(OfficeFiles(), 100, 42)
	b := FileSet(OfficeFiles(), 100, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different file sets")
		}
	}
	c := FileSet(OfficeFiles(), 100, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical file sets")
	}
}

func TestDeadlockPair(t *testing.T) {
	a, b := DeadlockPair(3, 7)
	if a[0] != 3 || a[1] != 7 || b[0] != 7 || b[1] != 3 {
		t.Fatalf("DeadlockPair = %v %v", a, b)
	}
}
