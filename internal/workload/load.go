package workload

// Closed-loop load generation: N agents, each issuing its next operation as
// soon as the previous one completes. Unlike the open-loop generators in
// workload.go (which just draw operations), RunClosedLoop drives real agents
// and times every operation, so the harness can report throughput and
// latency percentiles for a serving path under controlled concurrency.

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
)

// LoadAgent is one concurrent client of the system under load. The two
// operations mirror the file agent's positional I/O.
type LoadAgent interface {
	ReadAt(off int64, n int) ([]byte, error)
	WriteAt(off int64, data []byte) (int, error)
}

// LoadConfig shapes one closed-loop run.
type LoadConfig struct {
	// OpsPerAgent is the number of operations each agent issues.
	OpsPerAgent int
	// ReadFrac is the fraction of reads (see AccessGen).
	ReadFrac float64
	// OpSize is the bytes per operation.
	OpSize int
	// FileSize bounds each agent's offsets.
	FileSize int64
	// Sequential makes each agent scan linearly instead of uniformly.
	Sequential bool
	// Seed makes the operation streams reproducible; agent i derives its
	// stream from Seed+i.
	Seed int64
	// Latency, when non-nil, records one sample per operation (an obs
	// histogram, so quantiles come for free).
	Latency *obs.Histogram
}

// LoadResult summarizes one closed-loop run.
type LoadResult struct {
	Agents int
	Ops    int
	Bytes  int64
	Wall   time.Duration
}

// OpsPerSec is the aggregate completion rate.
func (r LoadResult) OpsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Wall.Seconds()
}

// RunClosedLoop drives every agent with its own seeded operation stream and
// returns aggregate throughput; per-operation latencies accumulate in
// cfg.Latency. The loop is closed: each agent has exactly one operation
// outstanding, so concurrency equals len(agents) throughout the run.
func RunClosedLoop(cfg LoadConfig, agents []LoadAgent) (LoadResult, error) {
	if cfg.OpsPerAgent <= 0 || cfg.OpSize <= 0 || cfg.FileSize <= 0 {
		return LoadResult{}, fmt.Errorf("workload: bad load config %+v", cfg)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(agents))
	start := time.Now()
	for i, a := range agents {
		wg.Add(1)
		go func(i int, a LoadAgent) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
			gen := AccessGen{
				FileSize:   cfg.FileSize,
				ReadFrac:   cfg.ReadFrac,
				OpSize:     cfg.OpSize,
				Sequential: cfg.Sequential,
			}
			buf := make([]byte, cfg.OpSize)
			for op := 0; op < cfg.OpsPerAgent; op++ {
				acc := gen.Next(rng)
				opStart := time.Now()
				var err error
				if acc.Read {
					_, err = a.ReadAt(acc.Offset, acc.Length)
				} else {
					_, err = a.WriteAt(acc.Offset, buf[:acc.Length])
				}
				if err != nil {
					errs[i] = fmt.Errorf("workload: agent %d op %d: %w", i, op, err)
					return
				}
				cfg.Latency.Record(time.Since(opStart))
			}
		}(i, a)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return LoadResult{}, err
		}
	}
	ops := len(agents) * cfg.OpsPerAgent
	return LoadResult{
		Agents: len(agents),
		Ops:    ops,
		Bytes:  int64(ops) * int64(cfg.OpSize),
		Wall:   wall,
	}, nil
}
