package workload

// Multi-tenant closed-loop load: like RunClosedLoop, but every operation
// first draws a target file from a Zipfian chooser, so N agents share a
// file population with a configurable hot spot. This is the contention
// shape the client-cache experiments need — with Theta high, most traffic
// lands on a handful of hot files that every agent re-reads (a lease-cache
// best case), while the cold tail keeps the miss path honest.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// MultiAgent is one concurrent client of a multi-file system under load:
// positional I/O addressed by a dense tenant-file index [0, Files).
type MultiAgent interface {
	ReadFileAt(file int, off int64, n int) ([]byte, error)
	WriteFileAt(file int, off int64, data []byte) (int, error)
}

// MultiTenantConfig shapes one multi-tenant closed-loop run. The embedded
// LoadConfig fields keep their single-file meanings (offsets are per file).
type MultiTenantConfig struct {
	LoadConfig
	// Files is the shared file population every agent draws from. Required.
	Files int
	// Theta skews file selection (see ItemChooser): 0 is uniform, higher
	// concentrates traffic on low-numbered hot files.
	Theta float64
}

// MultiTenantResult extends the closed-loop summary with the observed file
// distribution, so a run can assert its hot spot actually formed.
type MultiTenantResult struct {
	LoadResult
	// FileOps counts completed operations per file index.
	FileOps []int64
}

// HotFrac is the fraction of operations that landed on the hottest file.
func (r MultiTenantResult) HotFrac() float64 {
	if r.Ops == 0 {
		return 0
	}
	var max int64
	for _, n := range r.FileOps {
		if n > max {
			max = n
		}
	}
	return float64(max) / float64(r.Ops)
}

// RunMultiTenant drives every agent with its own seeded stream of
// (file, access) pairs and returns aggregate throughput plus the per-file
// operation counts. The loop is closed — one operation outstanding per
// agent — and file choice is resampled per operation, so with Theta > 0
// the same hot files are hit from many agents concurrently.
func RunMultiTenant(cfg MultiTenantConfig, agents []MultiAgent) (MultiTenantResult, error) {
	if cfg.Files <= 0 {
		return MultiTenantResult{}, fmt.Errorf("workload: bad file count %d", cfg.Files)
	}
	if cfg.OpsPerAgent <= 0 || cfg.OpSize <= 0 || cfg.FileSize <= 0 {
		return MultiTenantResult{}, fmt.Errorf("workload: bad load config %+v", cfg.LoadConfig)
	}
	chooser := ItemChooser{Items: cfg.Files, Theta: cfg.Theta}
	fileOps := make([]int64, cfg.Files)
	var wg sync.WaitGroup
	errs := make([]error, len(agents))
	start := time.Now()
	for i, a := range agents {
		wg.Add(1)
		go func(i int, a MultiAgent) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
			gen := AccessGen{
				FileSize:   cfg.FileSize,
				ReadFrac:   cfg.ReadFrac,
				OpSize:     cfg.OpSize,
				Sequential: cfg.Sequential,
			}
			buf := make([]byte, cfg.OpSize)
			for op := 0; op < cfg.OpsPerAgent; op++ {
				file := chooser.Choose(rng)
				acc := gen.Next(rng)
				opStart := time.Now()
				var err error
				if acc.Read {
					_, err = a.ReadFileAt(file, acc.Offset, acc.Length)
				} else {
					_, err = a.WriteFileAt(file, acc.Offset, buf[:acc.Length])
				}
				if err != nil {
					errs[i] = fmt.Errorf("workload: agent %d op %d file %d: %w", i, op, file, err)
					return
				}
				cfg.Latency.Record(time.Since(opStart))
				atomic.AddInt64(&fileOps[file], 1)
			}
		}(i, a)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return MultiTenantResult{}, err
		}
	}
	ops := len(agents) * cfg.OpsPerAgent
	return MultiTenantResult{
		LoadResult: LoadResult{
			Agents: len(agents),
			Ops:    ops,
			Bytes:  int64(ops) * int64(cfg.OpSize),
			Wall:   wall,
		},
		FileOps: fileOps,
	}, nil
}
