// Package unixfs implements the conventional file system the paper's design
// claims are implicitly measured against: fixed 8 KB blocks with no
// fragments, inodes in a fixed area at the start of the disk, 12 direct
// block pointers plus an indirect block, first-fit bitmap allocation, and —
// crucially — no contiguity counts: every data block costs its own disk
// reference, and every access descends inode → (indirect) → block.
//
// It is the baseline for E1 (disk references vs file size), E3 (whole-block
// metadata vs fragments), E4 (first-fit scan vs the run table) and E11
// (fixed inode area vs dynamically placed FITs).
package unixfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/device"
	"repro/internal/freespace"
)

// Layout constants.
const (
	BlockSize         = device.BlockSize
	FragmentsPerBlock = device.FragmentsPerBlock

	// DirectPointers is the classic dozen.
	DirectPointers = 12
	// PointersPerIndirect is the capacity of one indirect block.
	PointersPerIndirect = BlockSize / 4

	// inodeSize is the on-disk inode footprint. Conventional systems store
	// inodes in whole blocks in a fixed area; we pack 64 per block.
	inodeSize      = 128
	inodesPerBlock = BlockSize / inodeSize
)

// Ino is an inode number.
type Ino uint32

// Errors.
var (
	ErrNotFound  = errors.New("unixfs: no such file")
	ErrNoSpace   = errors.New("unixfs: no space")
	ErrTooLarge  = errors.New("unixfs: file exceeds direct+indirect capacity")
	ErrBadOffset = errors.New("unixfs: negative offset")
	ErrNoInodes  = errors.New("unixfs: inode area full")
)

// FS is a conventional block file system over one drive. It is safe for
// concurrent use.
type FS struct {
	disk      *device.Disk
	inodeBase int // fragment address of the inode area
	inodeBlks int // inode area length in blocks
	maxInodes int

	mu    sync.Mutex
	alloc *freespace.Map
	used  map[Ino]bool
	next  Ino
}

// Format creates a file system on the drive, reserving an inode area at the
// start sized for maxFiles inodes.
func Format(disk *device.Disk, maxFiles int) (*FS, error) {
	if disk == nil {
		return nil, errors.New("unixfs: nil disk")
	}
	if maxFiles <= 0 {
		maxFiles = 256
	}
	alloc, err := freespace.NewMap(disk.Geometry().Capacity())
	if err != nil {
		return nil, err
	}
	inodeBlks := (maxFiles + inodesPerBlock - 1) / inodesPerBlock
	fs := &FS{
		disk:      disk,
		inodeBase: 0,
		inodeBlks: inodeBlks,
		maxInodes: inodeBlks * inodesPerBlock,
		alloc:     alloc,
		used:      make(map[Ino]bool),
	}
	if err := alloc.AllocateAt(0, inodeBlks*FragmentsPerBlock); err != nil {
		return nil, fmt.Errorf("unixfs: reserving inode area: %w", err)
	}
	return fs, nil
}

// inode is the decoded on-disk inode.
type inode struct {
	size     uint64
	direct   [DirectPointers]uint32 // fragment addresses (0 = unset)
	indirect uint32
}

// inodeLoc returns the fragment address and byte offset of an inode.
func (f *FS) inodeLoc(ino Ino) (frag int, off int) {
	byteOff := int(ino) * inodeSize
	return f.inodeBase + byteOff/device.FragmentSize, byteOff % device.FragmentSize
}

// readInode costs one disk reference into the fixed inode area.
func (f *FS) readInode(ino Ino) (*inode, error) {
	frag, off := f.inodeLoc(ino)
	raw, err := f.disk.ReadFragments(frag, 1)
	if err != nil {
		return nil, err
	}
	b := raw[off : off+inodeSize]
	var in inode
	in.size = binary.BigEndian.Uint64(b[0:])
	for i := 0; i < DirectPointers; i++ {
		in.direct[i] = binary.BigEndian.Uint32(b[8+i*4:])
	}
	in.indirect = binary.BigEndian.Uint32(b[8+DirectPointers*4:])
	return &in, nil
}

// writeInode costs one disk reference (read-modify-write of the fragment).
func (f *FS) writeInode(ino Ino, in *inode) error {
	frag, off := f.inodeLoc(ino)
	raw, err := f.disk.ReadFragments(frag, 1)
	if err != nil {
		return err
	}
	b := raw[off : off+inodeSize]
	binary.BigEndian.PutUint64(b[0:], in.size)
	for i := 0; i < DirectPointers; i++ {
		binary.BigEndian.PutUint32(b[8+i*4:], in.direct[i])
	}
	binary.BigEndian.PutUint32(b[8+DirectPointers*4:], in.indirect)
	return f.disk.WriteFragments(frag, raw)
}

// Create allocates an inode.
func (f *FS) Create() (Ino, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for tries := 0; tries < f.maxInodes; tries++ {
		ino := f.next
		f.next = (f.next + 1) % Ino(f.maxInodes)
		if !f.used[ino] {
			f.used[ino] = true
			if err := f.writeInode(ino, &inode{}); err != nil {
				delete(f.used, ino)
				return 0, err
			}
			return ino, nil
		}
	}
	return 0, ErrNoInodes
}

// allocBlock first-fits one 8 KB block (4 fragments), unaligned and with no
// attempt at contiguity — the conventional behaviour the paper improves on.
func (f *FS) allocBlock() (uint32, error) {
	addr, err := f.alloc.AllocateFirstFit(FragmentsPerBlock)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrNoSpace, err)
	}
	return uint32(addr), nil
}

// blockAddr maps a logical block index through the inode, reading the
// indirect block (one extra disk reference) when needed. alloc extends the
// mapping.
func (f *FS) blockAddr(in *inode, blk int, alloc bool, dirty *bool) (uint32, error) {
	if blk < DirectPointers {
		if in.direct[blk] == 0 {
			if !alloc {
				return 0, fmt.Errorf("unixfs: hole at block %d", blk)
			}
			a, err := f.allocBlock()
			if err != nil {
				return 0, err
			}
			in.direct[blk] = a
			*dirty = true
		}
		return in.direct[blk], nil
	}
	idx := blk - DirectPointers
	if idx >= PointersPerIndirect {
		return 0, ErrTooLarge
	}
	if in.indirect == 0 {
		if !alloc {
			return 0, fmt.Errorf("unixfs: hole at block %d", blk)
		}
		a, err := f.allocBlock()
		if err != nil {
			return 0, err
		}
		if err := f.disk.WriteFragments(int(a), make([]byte, BlockSize)); err != nil {
			return 0, err
		}
		in.indirect = a
		*dirty = true
	}
	// One disk reference to read the indirect block.
	raw, err := f.disk.ReadFragments(int(in.indirect), FragmentsPerBlock)
	if err != nil {
		return 0, err
	}
	ptr := binary.BigEndian.Uint32(raw[idx*4:])
	if ptr == 0 {
		if !alloc {
			return 0, fmt.Errorf("unixfs: hole at block %d", blk)
		}
		a, err := f.allocBlock()
		if err != nil {
			return 0, err
		}
		binary.BigEndian.PutUint32(raw[idx*4:], a)
		if err := f.disk.WriteFragments(int(in.indirect), raw); err != nil {
			return 0, err
		}
		ptr = a
	}
	return ptr, nil
}

// ReadAt reads n bytes at off. Every data block costs one disk reference —
// there is no contiguity count and no cache.
func (f *FS) ReadAt(ino Ino, off int64, n int) ([]byte, error) {
	if off < 0 {
		return nil, ErrBadOffset
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.used[ino] {
		return nil, fmt.Errorf("%w: %d", ErrNotFound, ino)
	}
	in, err := f.readInode(ino)
	if err != nil {
		return nil, err
	}
	size := int64(in.size)
	if off >= size {
		return nil, nil
	}
	if off+int64(n) > size {
		n = int(size - off)
	}
	out := make([]byte, n)
	covered := 0
	var dirty bool
	for covered < n {
		pos := off + int64(covered)
		blk := int(pos / BlockSize)
		within := int(pos % BlockSize)
		addr, err := f.blockAddr(in, blk, false, &dirty)
		if err != nil {
			return nil, err
		}
		raw, err := f.disk.ReadFragments(int(addr), FragmentsPerBlock)
		if err != nil {
			return nil, err
		}
		covered += copy(out[covered:], raw[within:])
	}
	return out, nil
}

// WriteAt writes data at off, extending the file as needed.
func (f *FS) WriteAt(ino Ino, off int64, data []byte) (int, error) {
	if off < 0 {
		return 0, ErrBadOffset
	}
	if len(data) == 0 {
		return 0, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.used[ino] {
		return 0, fmt.Errorf("%w: %d", ErrNotFound, ino)
	}
	in, err := f.readInode(ino)
	if err != nil {
		return 0, err
	}
	dirty := false
	written := 0
	for written < len(data) {
		pos := off + int64(written)
		blk := int(pos / BlockSize)
		within := int(pos % BlockSize)
		chunk := BlockSize - within
		if chunk > len(data)-written {
			chunk = len(data) - written
		}
		addr, err := f.blockAddr(in, blk, true, &dirty)
		if err != nil {
			return written, err
		}
		var buf []byte
		if within == 0 && chunk == BlockSize {
			buf = data[written : written+BlockSize]
		} else {
			raw, err := f.disk.ReadFragments(int(addr), FragmentsPerBlock)
			if err != nil {
				return written, err
			}
			buf = raw
			copy(buf[within:], data[written:written+chunk])
		}
		if err := f.disk.WriteFragments(int(addr), buf); err != nil {
			return written, err
		}
		written += chunk
	}
	if end := uint64(off) + uint64(len(data)); end > in.size {
		in.size = end
		dirty = true
	}
	if dirty {
		if err := f.writeInode(ino, in); err != nil {
			return written, err
		}
	}
	return written, nil
}

// Size returns the file size.
func (f *FS) Size(ino Ino) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.used[ino] {
		return 0, fmt.Errorf("%w: %d", ErrNotFound, ino)
	}
	in, err := f.readInode(ino)
	if err != nil {
		return 0, err
	}
	return int64(in.size), nil
}

// Delete frees the file's blocks and inode.
func (f *FS) Delete(ino Ino) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.used[ino] {
		return fmt.Errorf("%w: %d", ErrNotFound, ino)
	}
	in, err := f.readInode(ino)
	if err != nil {
		return err
	}
	for _, a := range in.direct {
		if a != 0 {
			if err := f.alloc.Free(int(a), FragmentsPerBlock); err != nil {
				return err
			}
		}
	}
	if in.indirect != 0 {
		raw, err := f.disk.ReadFragments(int(in.indirect), FragmentsPerBlock)
		if err != nil {
			return err
		}
		for i := 0; i < PointersPerIndirect; i++ {
			if a := binary.BigEndian.Uint32(raw[i*4:]); a != 0 {
				if err := f.alloc.Free(int(a), FragmentsPerBlock); err != nil {
					return err
				}
			}
		}
		if err := f.alloc.Free(int(in.indirect), FragmentsPerBlock); err != nil {
			return err
		}
	}
	delete(f.used, ino)
	return nil
}

// InodeArea returns the fixed inode area's position and extent in fragments
// (experiment E11's placement contrast).
func (f *FS) InodeArea() (start, frags int) {
	return f.inodeBase, f.inodeBlks * FragmentsPerBlock
}
