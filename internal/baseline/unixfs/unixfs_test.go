package unixfs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/metrics"
)

func newFS(t *testing.T) (*FS, *metrics.Set) {
	t.Helper()
	met := metrics.NewSet()
	d, err := device.New(device.Geometry{FragmentsPerTrack: 32, Tracks: 512}, device.WithMetrics(met))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Format(d, 128)
	if err != nil {
		t.Fatal(err)
	}
	return fs, met
}

func payload(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestRoundTrip(t *testing.T) {
	fs, _ := newFS(t)
	ino, err := fs.Create()
	if err != nil {
		t.Fatal(err)
	}
	want := payload(3*BlockSize+500, 1)
	if _, err := fs.WriteAt(ino, 0, want); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAt(ino, 0, len(want))
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("round trip mismatch: %v", err)
	}
	if size, err := fs.Size(ino); err != nil || size != int64(len(want)) {
		t.Fatalf("Size = %d, %v", size, err)
	}
}

func TestPartialAndInteriorAccess(t *testing.T) {
	fs, _ := newFS(t)
	ino, err := fs.Create()
	if err != nil {
		t.Fatal(err)
	}
	want := payload(2*BlockSize, 2)
	if _, err := fs.WriteAt(ino, 0, want); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteAt(ino, 100, []byte("PATCH")); err != nil {
		t.Fatal(err)
	}
	copy(want[100:], "PATCH")
	got, err := fs.ReadAt(ino, 90, 30)
	if err != nil || !bytes.Equal(got, want[90:120]) {
		t.Fatalf("interior read mismatch: %q, %v", got, err)
	}
	// Past EOF.
	got, err = fs.ReadAt(ino, int64(len(want)), 10)
	if err != nil || got != nil {
		t.Fatalf("read past EOF = %q, %v", got, err)
	}
}

func TestIndirectBlocks(t *testing.T) {
	fs, _ := newFS(t)
	ino, err := fs.Create()
	if err != nil {
		t.Fatal(err)
	}
	// 20 blocks: 12 direct + 8 via the indirect block.
	want := payload(20*BlockSize, 3)
	if _, err := fs.WriteAt(ino, 0, want); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAt(ino, 0, len(want))
	if err != nil || !bytes.Equal(got, want) {
		t.Fatal("indirect round trip mismatch")
	}
}

func TestOneReferencePerBlock(t *testing.T) {
	// The baseline property E1 measures: an n-block read costs at least n
	// data references plus the inode (plus indirect lookups beyond block 12)
	// because there is no contiguity count.
	fs, met := newFS(t)
	ino, err := fs.Create()
	if err != nil {
		t.Fatal(err)
	}
	const blocks = 8
	if _, err := fs.WriteAt(ino, 0, payload(blocks*BlockSize, 4)); err != nil {
		t.Fatal(err)
	}
	before := met.Get(metrics.DiskReferences)
	if _, err := fs.ReadAt(ino, 0, blocks*BlockSize); err != nil {
		t.Fatal(err)
	}
	refs := met.Get(metrics.DiskReferences) - before
	if refs < blocks+1 {
		t.Fatalf("8-block read took %d references, want >= %d (inode + one per block)", refs, blocks+1)
	}
}

func TestDeleteFreesEverything(t *testing.T) {
	fs, _ := newFS(t)
	ino, err := fs.Create()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteAt(ino, 0, payload(20*BlockSize, 5)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete(ino); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadAt(ino, 0, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read of deleted = %v", err)
	}
	// The freed space is reusable: create and fill a same-sized file.
	ino2, err := fs.Create()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteAt(ino2, 0, payload(20*BlockSize, 6)); err != nil {
		t.Fatalf("reusing freed space: %v", err)
	}
}

func TestTooLarge(t *testing.T) {
	fs, _ := newFS(t)
	ino, err := fs.Create()
	if err != nil {
		t.Fatal(err)
	}
	maxBlocks := DirectPointers + PointersPerIndirect
	if _, err := fs.WriteAt(ino, int64(maxBlocks)*BlockSize, []byte("x")); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized write = %v", err)
	}
}

func TestInodePersistence(t *testing.T) {
	// Inodes live on disk, not in memory: a second FS handle over the same
	// device is not supported (no mount), but the inode round-trips through
	// the device on every operation, so metadata survives in the device.
	fs, met := newFS(t)
	ino, err := fs.Create()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteAt(ino, 0, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	before := met.Get(metrics.DiskReferences)
	if _, err := fs.Size(ino); err != nil {
		t.Fatal(err)
	}
	if got := met.Get(metrics.DiskReferences) - before; got == 0 {
		t.Fatal("Size did not touch the disk; inodes must live on disk")
	}
}

func TestInodeAreaFixedAtDiskStart(t *testing.T) {
	fs, _ := newFS(t)
	start, frags := fs.InodeArea()
	if start != 0 || frags <= 0 {
		t.Fatalf("inode area = %d+%d, want fixed area at 0 (E11 contrast)", start, frags)
	}
}

func TestManyFiles(t *testing.T) {
	fs, _ := newFS(t)
	inos := map[Ino][]byte{}
	for i := 0; i < 50; i++ {
		ino, err := fs.Create()
		if err != nil {
			t.Fatal(err)
		}
		data := payload(1+i*100, int64(i))
		if _, err := fs.WriteAt(ino, 0, data); err != nil {
			t.Fatal(err)
		}
		inos[ino] = data
	}
	for ino, want := range inos {
		got, err := fs.ReadAt(ino, 0, len(want))
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("file %d mismatch: %v", ino, err)
		}
	}
}
