package bullet

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/device"
	"repro/internal/metrics"
)

func newServer(t *testing.T) (*Server, *metrics.Set) {
	t.Helper()
	met := metrics.NewSet()
	d, err := device.New(device.Geometry{FragmentsPerTrack: 32, Tracks: 64}, device.WithMetrics(met))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	return s, met
}

func TestCreateReadRoundTrip(t *testing.T) {
	s, _ := newServer(t)
	want := bytes.Repeat([]byte("bullet"), 1000)
	id, err := s.Create(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(id)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("Read mismatch: %v", err)
	}
	size, err := s.Size(id)
	if err != nil || size != len(want) {
		t.Fatalf("Size = %d, %v", size, err)
	}
}

func TestWholeFileReadIsOneReferenceEveryTime(t *testing.T) {
	s, met := newServer(t)
	id, err := s.Create(bytes.Repeat([]byte("x"), 64*1024))
	if err != nil {
		t.Fatal(err)
	}
	before := met.Get(metrics.DiskReferences)
	for i := 0; i < 10; i++ {
		if _, err := s.Read(id); err != nil {
			t.Fatal(err)
		}
	}
	// One reference per read — every time, because there is no cache (§1).
	if got := met.Get(metrics.DiskReferences) - before; got != 10 {
		t.Fatalf("10 re-reads took %d references, want 10 (no caching)", got)
	}
}

func TestDeleteFreesSpace(t *testing.T) {
	s, _ := newServer(t)
	id, err := s.Create([]byte("temp"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read of deleted = %v", err)
	}
	if err := s.Delete(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v", err)
	}
}

func TestEmptyFileRejected(t *testing.T) {
	s, _ := newServer(t)
	if _, err := s.Create(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Create(nil) = %v", err)
	}
}

func TestFilesAreImmutablyDistinct(t *testing.T) {
	s, _ := newServer(t)
	a, err := s.Create([]byte("aaaa"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Create([]byte("bbbb"))
	if err != nil {
		t.Fatal(err)
	}
	ga, _ := s.Read(a)
	gb, _ := s.Read(b)
	if string(ga) != "aaaa" || string(gb) != "bbbb" {
		t.Fatalf("contents mixed: %q %q", ga, gb)
	}
}
