// Package bullet implements a comparator modeled on Amoeba's Bullet server,
// which the paper singles out in §1: a whole-file server with *no caching in
// the client machine*. Files are immutable and stored contiguously; every
// read transfers the entire file from the disk, every time.
//
// It is the contrast case for the caching experiments (E6): per-operation
// the Bullet design is excellent (one disk reference per whole-file read),
// but re-reads pay the full disk cost that RHODOS's agent/file-service/disk
// caches absorb.
package bullet

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/device"
	"repro/internal/freespace"
)

// FileID identifies an immutable file.
type FileID uint64

// Errors.
var (
	ErrNotFound = errors.New("bullet: no such file")
	ErrNoSpace  = errors.New("bullet: no contiguous space")
	ErrEmpty    = errors.New("bullet: empty file")
)

type fileInfo struct {
	addr  int // first fragment
	frags int
	size  int
}

// Server is a Bullet-style file server. It is safe for concurrent use.
type Server struct {
	disk *device.Disk

	mu     sync.Mutex
	alloc  *freespace.Map
	files  map[FileID]fileInfo
	nextID FileID
}

// New creates a server over a drive.
func New(disk *device.Disk) (*Server, error) {
	if disk == nil {
		return nil, errors.New("bullet: nil disk")
	}
	alloc, err := freespace.NewMap(disk.Geometry().Capacity())
	if err != nil {
		return nil, err
	}
	return &Server{disk: disk, alloc: alloc, files: make(map[FileID]fileInfo)}, nil
}

// Create stores an immutable file contiguously and returns its ID. The
// whole file is written with one disk reference.
func (s *Server) Create(data []byte) (FileID, error) {
	if len(data) == 0 {
		return 0, ErrEmpty
	}
	frags := (len(data) + device.FragmentSize - 1) / device.FragmentSize
	s.mu.Lock()
	defer s.mu.Unlock()
	addr, err := s.alloc.Allocate(frags)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrNoSpace, err)
	}
	buf := make([]byte, frags*device.FragmentSize)
	copy(buf, data)
	if err := s.disk.WriteFragments(addr, buf); err != nil {
		_ = s.alloc.Free(addr, frags)
		return 0, err
	}
	s.nextID++
	s.files[s.nextID] = fileInfo{addr: addr, frags: frags, size: len(data)}
	return s.nextID, nil
}

// Read transfers the whole file from the disk — there is no cache at any
// level, which is precisely the §1 criticism this baseline reproduces.
func (s *Server) Read(id FileID) ([]byte, error) {
	s.mu.Lock()
	fi, ok := s.files[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	raw, err := s.disk.ReadFragments(fi.addr, fi.frags)
	if err != nil {
		return nil, err
	}
	return raw[:fi.size], nil
}

// Delete removes a file.
func (s *Server) Delete(id FileID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	fi, ok := s.files[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	delete(s.files, id)
	return s.alloc.Free(fi.addr, fi.frags)
}

// Size returns a file's size in bytes.
func (s *Server) Size(id FileID) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fi, ok := s.files[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	return fi.size, nil
}
