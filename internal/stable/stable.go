// Package stable implements stable storage (§2.1, §6.6): a pair of mirrored
// simulated drives written with the careful-write discipline, so that every
// vital structure survives the loss or corruption of either copy.
//
// Writes go to the primary first and then to the mirror; reads come from the
// primary and fall back to the mirror (repairing the primary) on a media
// error. A recovery scan reconciles the two copies after a crash: an
// unreadable copy is restored from its twin, and when both are readable but
// differ — the signature of a crash between the two careful writes — the
// primary wins, because it is written first and therefore holds the newer
// data.
//
// The store also embeds a fragment allocator so that its clients (the disk
// service's structural mirrors, the write-ahead log, shadow-page staging)
// can claim disjoint regions of the stable address space.
package stable

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"repro/internal/device"
	"repro/internal/fault"
	"repro/internal/freespace"
	"repro/internal/metrics"
)

// ErrClosed reports use of a store after Close.
var ErrClosed = errors.New("stable: store closed")

// Fault points in the careful-write sequence. The crash points bracket the
// two mirror writes — dying between them is the classic stable-storage
// divergence that Recover's primary-wins rule heals — and the per-disk
// points take torn-write and error injections. The deferred points cover the
// background worker; they are error-only sites (the worker goroutine is not
// the harness's, so it must never be crash-armed).
var (
	PtWriteBeforePrimary = fault.Register("stable.write.before-primary")
	PtWriteAfterPrimary  = fault.Register("stable.write.after-primary")
	PtWritePrimary       = fault.Register("stable.write.primary")
	PtWriteMirror        = fault.Register("stable.write.mirror")
	PtDeferredPrimary    = fault.Register("stable.deferred.primary")
	PtDeferredMirror     = fault.Register("stable.deferred.mirror")
)

// Store is a mirrored stable store. It is safe for concurrent use.
type Store struct {
	primary *device.Disk
	mirror  *device.Disk
	alloc   *freespace.Map
	met     *metrics.Set

	mu      sync.Mutex
	closed  bool
	pending sync.WaitGroup // deferred writes in flight
	deferCh chan deferred
	loopWG  sync.WaitGroup

	errMu   sync.Mutex
	lastErr error // first unobserved error from a deferred write

	fault *fault.Injector
}

type deferred struct {
	start int
	data  []byte
}

// Option configures a Store.
type Option func(*Store)

// WithMetrics sets the metric set receiving stable-write counters.
func WithMetrics(s *metrics.Set) Option { return func(st *Store) { st.met = s } }

// WithFault attaches a fault injector to the store's write paths. A nil
// injector is valid and injects nothing.
func WithFault(in *fault.Injector) Option { return func(st *Store) { st.fault = in } }

// NewStore creates a stable store over two drives of identical geometry.
// Close must be called to stop the deferred-write worker.
func NewStore(primary, mirror *device.Disk, opts ...Option) (*Store, error) {
	if primary == nil || mirror == nil {
		return nil, errors.New("stable: nil device")
	}
	if primary.Geometry() != mirror.Geometry() {
		return nil, fmt.Errorf("stable: mismatched geometries %+v vs %+v",
			primary.Geometry(), mirror.Geometry())
	}
	alloc, err := freespace.NewMap(primary.Geometry().Capacity())
	if err != nil {
		return nil, err
	}
	st := &Store{
		primary: primary,
		mirror:  mirror,
		alloc:   alloc,
		deferCh: make(chan deferred, 64),
	}
	for _, o := range opts {
		o(st)
	}
	st.loopWG.Add(1)
	go st.deferLoop()
	return st, nil
}

// Capacity returns the store size in fragments.
func (s *Store) Capacity() int { return s.primary.Geometry().Capacity() }

// Allocate claims n contiguous stable fragments.
func (s *Store) Allocate(n int) (int, error) { return s.alloc.Allocate(n) }

// AllocateAt claims the exact span [start, start+n).
func (s *Store) AllocateAt(start, n int) error { return s.alloc.AllocateAt(start, n) }

// Free releases a span claimed with Allocate.
func (s *Store) Free(start, n int) error { return s.alloc.Free(start, n) }

// FreeCount returns the number of unclaimed stable fragments.
func (s *Store) FreeCount() int { return s.alloc.FreeCount() }

// Write stores data (a whole number of fragments) at the given fragment
// address on both mirrors, primary first, returning when both copies are on
// disk. This is the "call returned after saving on stable storage" flavour
// of put-block (§4).
func (s *Store) Write(start int, data []byte) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.mu.Unlock()
	s.fault.Hit(PtWriteBeforePrimary)
	if err := s.writeDisk(s.primary, PtWritePrimary, start, data); err != nil {
		return fmt.Errorf("stable: primary write: %w", err)
	}
	s.fault.Hit(PtWriteAfterPrimary)
	if err := s.writeDisk(s.mirror, PtWriteMirror, start, data); err != nil {
		return fmt.Errorf("stable: mirror write: %w", err)
	}
	s.met.Inc(metrics.StableWrites)
	return nil
}

// writeDisk performs one careful write to a single mirror, honoring any
// fault armed at p: an injected error fails the write outright; a torn-write
// action persists only the armed fragment prefix and then either kills the
// run or fails the call, modeling a write interrupted by a crash or a drive
// dropping power mid-transfer.
func (s *Store) writeDisk(d *device.Disk, p fault.Point, start int, data []byte) error {
	if err := s.fault.Err(p); err != nil {
		return err
	}
	if frags, crash, ok := s.fault.Torn(p); ok {
		n := len(data) / device.FragmentSize
		if frags > n {
			frags = n
		}
		if frags > 0 {
			if err := d.WriteFragments(start, data[:frags*device.FragmentSize]); err != nil {
				return err
			}
		}
		if crash {
			fault.CrashNow(p)
		}
		return fmt.Errorf("torn write at %d (%d/%d fragments): %w", start, frags, n, fault.ErrInjected)
	}
	return d.WriteFragments(start, data)
}

// WriteDeferred queues data for stable write and returns immediately — the
// "call returned before saving on stable storage" flavour of put-block (§4).
// The data slice is copied. Errors surface from Barrier, Flush or Close.
func (s *Store) WriteDeferred(start int, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.pending.Add(1)
	s.deferCh <- deferred{start: start, data: cp}
	return nil
}

func (s *Store) deferLoop() {
	defer s.loopWG.Done()
	for d := range s.deferCh {
		if err := s.writeBoth(d.start, d.data); err != nil {
			s.errMu.Lock()
			if s.lastErr == nil {
				s.lastErr = err
			}
			s.errMu.Unlock()
		}
		s.pending.Done()
	}
}

func (s *Store) writeBoth(start int, data []byte) error {
	if err := s.writeDisk(s.primary, PtDeferredPrimary, start, data); err != nil {
		return fmt.Errorf("stable: primary write: %w", err)
	}
	if err := s.writeDisk(s.mirror, PtDeferredMirror, start, data); err != nil {
		return fmt.Errorf("stable: mirror write: %w", err)
	}
	s.met.Inc(metrics.StableWrites)
	return nil
}

// Flush waits for all deferred writes to reach both mirrors and returns the
// first deferred-write error, if any. The error stays recorded, so every
// later Flush or Close reports it too.
func (s *Store) Flush() error {
	s.pending.Wait()
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.lastErr
}

// Barrier waits for every deferred write queued so far to reach both
// mirrors and returns the first deferred-write error since the last
// Barrier, consuming it. A sync path that calls Barrier therefore cannot
// complete over a silently failed deferred write, and a retry after the
// caller repairs the fault starts clean. Flush and Close, by contrast,
// leave the error recorded.
func (s *Store) Barrier() error {
	s.pending.Wait()
	s.errMu.Lock()
	defer s.errMu.Unlock()
	err := s.lastErr
	s.lastErr = nil
	return err
}

// Read returns n fragments starting at start. It reads the primary and, on
// a media error, falls back to the mirror and repairs the primary copy.
func (s *Store) Read(start, n int) ([]byte, error) {
	data, perr := s.primary.ReadFragments(start, n)
	if perr == nil {
		return data, nil
	}
	if !errors.Is(perr, device.ErrMediaError) && !errors.Is(perr, device.ErrFailed) {
		return nil, perr
	}
	data, merr := s.mirror.ReadFragments(start, n)
	if merr != nil {
		return nil, fmt.Errorf("stable: both copies unreadable: primary %v, mirror %w", perr, merr)
	}
	// Repair the primary if it is online; a powered-off primary is repaired
	// by the next Recover.
	if errors.Is(perr, device.ErrMediaError) {
		if werr := s.primary.WriteFragments(start, data); werr != nil {
			return data, nil // data is good; repair is best-effort
		}
	}
	return data, nil
}

// RecoveryReport summarizes a Recover scan.
type RecoveryReport struct {
	FragmentsScanned  int
	PrimaryRepaired   int // primary fragments restored from the mirror
	MirrorRepaired    int // mirror fragments restored from the primary
	DivergenceHealed  int // both readable but different; primary propagated
	UnrecoverableLost int // both copies unreadable (catastrophe)
}

// Recover reconciles the two mirrors after a crash, scanning track by track.
// It implements the stable-storage recovery rule: restore an unreadable copy
// from its twin; when both copies are readable but differ, the primary —
// written first — wins. Deferred writes still in flight are waited out first,
// so the scan sees a quiescent pair.
func (s *Store) Recover() (RecoveryReport, error) {
	s.pending.Wait()
	var rep RecoveryReport
	geom := s.primary.Geometry()
	for f := 0; f < geom.Capacity(); f++ {
		rep.FragmentsScanned++
		p, perr := s.primary.ReadFragments(f, 1)
		m, merr := s.mirror.ReadFragments(f, 1)
		switch {
		case perr == nil && merr == nil:
			if !bytes.Equal(p, m) {
				if err := s.mirror.WriteFragments(f, p); err != nil {
					return rep, fmt.Errorf("stable: healing mirror fragment %d: %w", f, err)
				}
				rep.DivergenceHealed++
			}
		case perr != nil && merr == nil:
			if err := s.primary.WriteFragments(f, m); err != nil {
				return rep, fmt.Errorf("stable: restoring primary fragment %d: %w", f, err)
			}
			rep.PrimaryRepaired++
		case perr == nil && merr != nil:
			if err := s.mirror.WriteFragments(f, p); err != nil {
				return rep, fmt.Errorf("stable: restoring mirror fragment %d: %w", f, err)
			}
			rep.MirrorRepaired++
		default:
			rep.UnrecoverableLost++
		}
	}
	return rep, nil
}

// Close drains deferred writes and stops the worker. It returns the first
// deferred-write error, if any. Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.pending.Wait()
	close(s.deferCh)
	s.loopWG.Wait()
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.lastErr
}
