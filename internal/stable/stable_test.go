package stable

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/device"
	"repro/internal/fault"
	"repro/internal/metrics"
)

func newPair(t *testing.T) (*device.Disk, *device.Disk) {
	t.Helper()
	g := device.Geometry{FragmentsPerTrack: 8, Tracks: 8}
	p, err := device.New(g)
	if err != nil {
		t.Fatal(err)
	}
	m, err := device.New(g)
	if err != nil {
		t.Fatal(err)
	}
	return p, m
}

func newStore(t *testing.T) (*Store, *device.Disk, *device.Disk) {
	t.Helper()
	p, m := newPair(t)
	st, err := NewStore(p, m)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	return st, p, m
}

func frag(seed byte) []byte {
	b := make([]byte, device.FragmentSize)
	for i := range b {
		b[i] = seed
	}
	return b
}

func TestNewStoreValidation(t *testing.T) {
	p, _ := newPair(t)
	if _, err := NewStore(nil, p); err == nil {
		t.Fatal("NewStore(nil, p) succeeded")
	}
	if _, err := NewStore(p, nil); err == nil {
		t.Fatal("NewStore(p, nil) succeeded")
	}
	other, err := device.New(device.Geometry{FragmentsPerTrack: 4, Tracks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(p, other); err == nil {
		t.Fatal("NewStore with mismatched geometry succeeded")
	}
}

func TestWriteHitsBothMirrors(t *testing.T) {
	st, p, m := newStore(t)
	want := frag(7)
	if err := st.Write(3, want); err != nil {
		t.Fatalf("Write: %v", err)
	}
	for name, d := range map[string]*device.Disk{"primary": p, "mirror": m} {
		got, err := d.ReadFragments(3, 1)
		if err != nil {
			t.Fatalf("%s read: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s copy differs", name)
		}
	}
}

func TestReadFallsBackToMirrorAndRepairs(t *testing.T) {
	st, p, _ := newStore(t)
	want := frag(9)
	if err := st.Write(2, want); err != nil {
		t.Fatal(err)
	}
	if err := p.CorruptFragment(2); err != nil {
		t.Fatal(err)
	}
	got, err := st.Read(2, 1)
	if err != nil {
		t.Fatalf("Read with corrupted primary: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("Read returned wrong data from mirror")
	}
	// The primary must have been repaired in passing.
	got, err = p.ReadFragments(2, 1)
	if err != nil {
		t.Fatalf("primary still unreadable after repair: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("primary repair wrote wrong data")
	}
}

func TestReadBothCopiesLost(t *testing.T) {
	st, p, m := newStore(t)
	if err := st.Write(1, frag(1)); err != nil {
		t.Fatal(err)
	}
	if err := p.CorruptFragment(1); err != nil {
		t.Fatal(err)
	}
	if err := m.CorruptFragment(1); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Read(1, 1); err == nil {
		t.Fatal("Read with both copies lost succeeded")
	}
}

func TestReadFallsBackWhenPrimaryFailed(t *testing.T) {
	st, p, _ := newStore(t)
	want := frag(4)
	if err := st.Write(5, want); err != nil {
		t.Fatal(err)
	}
	p.Fail()
	got, err := st.Read(5, 1)
	if err != nil {
		t.Fatalf("Read with failed primary: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("Read returned wrong data")
	}
}

func TestRecoverHealsDivergence(t *testing.T) {
	st, p, m := newStore(t)
	if err := st.Write(0, frag(1)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash between the careful writes: primary has new data,
	// mirror has old.
	if err := p.WriteFragments(0, frag(2)); err != nil {
		t.Fatal(err)
	}
	rep, err := st.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rep.DivergenceHealed != 1 {
		t.Fatalf("DivergenceHealed = %d, want 1", rep.DivergenceHealed)
	}
	got, err := m.ReadFragments(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, frag(2)) {
		t.Fatal("recover did not propagate primary (newer) copy to mirror")
	}
}

func TestRecoverRestoresCorruptedCopies(t *testing.T) {
	st, p, m := newStore(t)
	if err := st.Write(1, frag(3)); err != nil {
		t.Fatal(err)
	}
	if err := st.Write(2, frag(4)); err != nil {
		t.Fatal(err)
	}
	if err := p.CorruptFragment(1); err != nil {
		t.Fatal(err)
	}
	if err := m.CorruptFragment(2); err != nil {
		t.Fatal(err)
	}
	rep, err := st.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rep.PrimaryRepaired != 1 || rep.MirrorRepaired != 1 {
		t.Fatalf("repaired primary=%d mirror=%d, want 1 and 1", rep.PrimaryRepaired, rep.MirrorRepaired)
	}
	for _, d := range []*device.Disk{p, m} {
		if got, err := d.ReadFragments(1, 1); err != nil || !bytes.Equal(got, frag(3)) {
			t.Fatalf("fragment 1 not restored: %v", err)
		}
		if got, err := d.ReadFragments(2, 1); err != nil || !bytes.Equal(got, frag(4)) {
			t.Fatalf("fragment 2 not restored: %v", err)
		}
	}
}

func TestRecoverReportsCatastrophe(t *testing.T) {
	st, p, m := newStore(t)
	if err := p.CorruptFragment(0); err != nil {
		t.Fatal(err)
	}
	if err := m.CorruptFragment(0); err != nil {
		t.Fatal(err)
	}
	rep, err := st.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rep.UnrecoverableLost != 1 {
		t.Fatalf("UnrecoverableLost = %d, want 1", rep.UnrecoverableLost)
	}
}

func TestWriteDeferredAndFlush(t *testing.T) {
	st, p, m := newStore(t)
	want := frag(8)
	if err := st.WriteDeferred(6, want); err != nil {
		t.Fatalf("WriteDeferred: %v", err)
	}
	if err := st.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	for name, d := range map[string]*device.Disk{"primary": p, "mirror": m} {
		got, err := d.ReadFragments(6, 1)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("%s missing deferred write: %v", name, err)
		}
	}
}

func TestWriteDeferredCopiesData(t *testing.T) {
	st, p, _ := newStore(t)
	data := frag(5)
	if err := st.WriteDeferred(0, data); err != nil {
		t.Fatal(err)
	}
	data[0] = 0xEE // mutate after enqueue; the store must have copied
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := p.ReadFragments(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 {
		t.Fatal("deferred write observed caller's later mutation")
	}
}

func TestDeferredErrorSurfacesOnFlush(t *testing.T) {
	st, p, _ := newStore(t)
	p.Fail()
	if err := st.WriteDeferred(0, frag(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err == nil {
		t.Fatal("Flush returned nil after failed deferred write")
	}
}

func TestCloseIdempotentAndRejectsUse(t *testing.T) {
	st, _, _ := newStore(t)
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := st.Write(0, frag(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Write after Close = %v, want ErrClosed", err)
	}
	if err := st.WriteDeferred(0, frag(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("WriteDeferred after Close = %v, want ErrClosed", err)
	}
}

func TestAllocatorDisjointRegions(t *testing.T) {
	st, _, _ := newStore(t)
	a, err := st.Allocate(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.Allocate(4)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("allocator returned overlapping regions")
	}
	if err := st.Free(a, 4); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if st.FreeCount() != st.Capacity()-4 {
		t.Fatalf("FreeCount = %d, want %d", st.FreeCount(), st.Capacity()-4)
	}
}

func TestStableWriteCounter(t *testing.T) {
	p, m := newPair(t)
	met := metrics.NewSet()
	st, err := NewStore(p, m, WithMetrics(met))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = st.Close() }()
	if err := st.Write(0, frag(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteDeferred(1, frag(2)); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := met.Get(metrics.StableWrites); got != 2 {
		t.Fatalf("stable writes = %d, want 2", got)
	}
}

func TestBarrierSurfacesAndConsumesDeferredFault(t *testing.T) {
	p, m := newPair(t)
	inj := fault.NewInjector(11)
	st, err := NewStore(p, m, WithFault(inj))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	start, err := st.Allocate(1)
	if err != nil {
		t.Fatal(err)
	}
	inj.Arm(PtDeferredMirror, fault.Action{Kind: fault.KindError, Err: device.ErrFailed})
	if err := st.WriteDeferred(start, frag(1)); err != nil {
		t.Fatal(err)
	}
	err = st.Barrier()
	if err == nil {
		t.Fatal("Barrier swallowed the failed deferred mirror write")
	}
	if !errors.Is(err, fault.ErrInjected) || !errors.Is(err, device.ErrFailed) {
		t.Fatalf("Barrier error %v does not carry the injected cause", err)
	}
	// Barrier consumes the error: after the fault clears, a retry goes clean.
	if err := st.Barrier(); err != nil {
		t.Fatalf("second Barrier = %v, want nil (error consumed)", err)
	}
	if err := st.WriteDeferred(start, frag(2)); err != nil {
		t.Fatal(err)
	}
	if err := st.Barrier(); err != nil {
		t.Fatalf("retried deferred write: %v", err)
	}
	for _, d := range []*device.Disk{p, m} {
		got, err := d.ReadFragments(start, 1)
		if err != nil || !bytes.Equal(got, frag(2)) {
			t.Fatalf("mirror missing retried data: %v", err)
		}
	}
}

func TestCloseSurfacesDeferredFault(t *testing.T) {
	p, m := newPair(t)
	inj := fault.NewInjector(12)
	st, err := NewStore(p, m, WithFault(inj))
	if err != nil {
		t.Fatal(err)
	}
	start, err := st.Allocate(1)
	if err != nil {
		t.Fatal(err)
	}
	inj.Arm(PtDeferredPrimary, fault.Action{Kind: fault.KindError, Err: device.ErrFailed})
	if err := st.WriteDeferred(start, frag(3)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err == nil || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Close = %v, want the deferred-write fault surfaced", err)
	}
}

func TestSyncWriteTornPrimaryFailsWrite(t *testing.T) {
	p, m := newPair(t)
	inj := fault.NewInjector(13)
	st, err := NewStore(p, m, WithFault(inj))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	start, err := st.Allocate(2)
	if err != nil {
		t.Fatal(err)
	}
	data := append(frag(7), frag(8)...)
	inj.Arm(PtWritePrimary, fault.Action{Kind: fault.KindTorn, Frags: 1})
	err = st.Write(start, data)
	if err == nil || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("torn write = %v, want injected failure", err)
	}
	// The torn prefix reached the primary; the mirror was never touched —
	// exactly the divergence Recover's primary-wins rule heals.
	got, err := p.ReadFragments(start, 1)
	if err != nil || !bytes.Equal(got, frag(7)) {
		t.Fatalf("primary missing torn prefix: %v", err)
	}
	if got, _ := m.ReadFragments(start, 1); bytes.Equal(got, frag(7)) {
		t.Fatal("mirror written despite torn primary")
	}
	rep, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.DivergenceHealed == 0 && rep.MirrorRepaired == 0 {
		t.Fatalf("recover healed nothing: %+v", rep)
	}
}
