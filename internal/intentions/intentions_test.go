package intentions

import (
	"bytes"
	"testing"
)

func TestStatusTransitions(t *testing.T) {
	l := NewList(1)
	if l.Status() != Tentative {
		t.Fatalf("fresh list status = %v, want tentative", l.Status())
	}
	if err := l.SetStatus(Committed); err != nil {
		t.Fatal(err)
	}
	if err := l.SetStatus(Aborted); err == nil {
		t.Fatal("commit->abort transition allowed")
	}
	l2 := NewList(2)
	if err := l2.SetStatus(Aborted); err != nil {
		t.Fatal(err)
	}
	if err := l2.SetStatus(Committed); err == nil {
		t.Fatal("abort->commit transition allowed")
	}
	l3 := NewList(3)
	if err := l3.SetStatus(Tentative); err == nil {
		t.Fatal("transition to tentative allowed")
	}
}

func TestSetIntentionAfterDecisionRejected(t *testing.T) {
	l := NewList(1)
	if err := l.SetStatus(Committed); err != nil {
		t.Fatal(err)
	}
	if err := l.SetIntention(Record{File: 1, Kind: PageKind, Block: 0, Data: []byte("x")}); err == nil {
		t.Fatal("intention accepted after commit")
	}
}

func TestPageIntentionMerges(t *testing.T) {
	l := NewList(1)
	if err := l.SetIntention(Record{File: 1, Kind: PageKind, Block: 2, Data: []byte("old")}); err != nil {
		t.Fatal(err)
	}
	if err := l.SetIntention(Record{File: 1, Kind: PageKind, Block: 2, Data: []byte("new")}); err != nil {
		t.Fatal(err)
	}
	recs := l.GetIntentions()
	if len(recs) != 1 || string(recs[0].Data) != "new" {
		t.Fatalf("page intentions = %+v, want one merged record", recs)
	}
	// Different block: separate record.
	if err := l.SetIntention(Record{File: 1, Kind: PageKind, Block: 3, Data: []byte("b3")}); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
}

func TestRecordIntentionsKeepOrder(t *testing.T) {
	l := NewList(1)
	for i, s := range []string{"first", "second", "third"} {
		if err := l.SetIntention(Record{File: 1, Kind: RecordKind, Offset: int64(i), Length: len(s), Data: []byte(s)}); err != nil {
			t.Fatal(err)
		}
	}
	recs := l.GetIntentions()
	if len(recs) != 3 {
		t.Fatalf("Len = %d, want 3", len(recs))
	}
	for i, want := range []string{"first", "second", "third"} {
		if string(recs[i].Data) != want {
			t.Fatalf("record %d = %q, want %q", i, recs[i].Data, want)
		}
	}
}

func TestDataIsCopied(t *testing.T) {
	l := NewList(1)
	buf := []byte("abc")
	if err := l.SetIntention(Record{File: 1, Kind: RecordKind, Offset: 0, Length: 3, Data: buf}); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'z'
	if got := string(l.GetIntentions()[0].Data); got != "abc" {
		t.Fatalf("intention data aliased caller buffer: %q", got)
	}
}

func TestAssignTechniques(t *testing.T) {
	l := NewList(1)
	mustSet := func(r Record) {
		t.Helper()
		if err := l.SetIntention(r); err != nil {
			t.Fatal(err)
		}
	}
	mustSet(Record{File: 1, Kind: RecordKind, Offset: 0, Length: 3, Data: []byte("rec")})
	mustSet(Record{File: 1, Kind: PageKind, Block: 0, Data: []byte("pg")})
	mustSet(Record{File: 2, Kind: PageKind, Block: 0, Data: []byte("pg")})
	l.AssignTechniques(func(file uint64) bool { return file == 1 }) // file 1 contiguous
	recs := l.GetIntentions()
	if recs[0].Technique != WAL {
		t.Fatalf("record-mode technique = %v, want WAL (always)", recs[0].Technique)
	}
	if recs[1].Technique != WAL {
		t.Fatalf("contiguous page technique = %v, want WAL", recs[1].Technique)
	}
	if recs[2].Technique != ShadowPage {
		t.Fatalf("non-contiguous page technique = %v, want shadow-page", recs[2].Technique)
	}
}

func TestRemoveIntentions(t *testing.T) {
	l := NewList(1)
	for i := 0; i < 3; i++ {
		if err := l.SetIntention(Record{File: 1, Kind: RecordKind, Offset: int64(i * 10), Length: 1, Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	recs := l.GetIntentions()
	l.RemoveIntentions(recs[0].Seq, recs[2].Seq)
	left := l.GetIntentions()
	if len(left) != 1 || left[0].Seq != recs[1].Seq {
		t.Fatalf("after removal: %+v", left)
	}
}

func TestFilesAndPerFileViews(t *testing.T) {
	l := NewList(1)
	mustSet := func(r Record) {
		t.Helper()
		if err := l.SetIntention(r); err != nil {
			t.Fatal(err)
		}
	}
	mustSet(Record{File: 5, Kind: PageKind, Block: 0, Data: []byte("a")})
	mustSet(Record{File: 3, Kind: PageKind, Block: 0, Data: []byte("b")})
	mustSet(Record{File: 5, Kind: PageKind, Block: 1, Data: []byte("c")})
	files := l.Files()
	if len(files) != 2 || files[0] != 5 || files[1] != 3 {
		t.Fatalf("Files = %v, want [5 3]", files)
	}
	f5 := l.IntentionsForFile(5)
	if len(f5) != 2 {
		t.Fatalf("IntentionsForFile(5) = %d records, want 2", len(f5))
	}
}

func TestOverlayRecordMode(t *testing.T) {
	l := NewList(1)
	// Base content: 20 dots from offset 10.
	base := bytes.Repeat([]byte("."), 20)
	// Tentative write "HELLO" at absolute offset 15.
	if err := l.SetIntention(Record{File: 1, Kind: RecordKind, Offset: 15, Length: 5, Data: []byte("HELLO")}); err != nil {
		t.Fatal(err)
	}
	out := l.Overlay(1, 10, base, 8192)
	want := ".....HELLO.........."[:20]
	if string(out) != want {
		t.Fatalf("overlay = %q, want %q", out, want)
	}
	// Writes to other files don't apply.
	if err := l.SetIntention(Record{File: 2, Kind: RecordKind, Offset: 10, Length: 3, Data: []byte("XXX")}); err != nil {
		t.Fatal(err)
	}
	out = l.Overlay(1, 10, bytes.Repeat([]byte("."), 20), 8192)
	if string(out) != want {
		t.Fatalf("overlay leaked across files: %q", out)
	}
}

func TestOverlayLaterWritesWin(t *testing.T) {
	l := NewList(1)
	mustSet := func(off int64, s string) {
		t.Helper()
		if err := l.SetIntention(Record{File: 1, Kind: RecordKind, Offset: off, Length: len(s), Data: []byte(s)}); err != nil {
			t.Fatal(err)
		}
	}
	mustSet(0, "AAAA")
	mustSet(2, "BB")
	out := l.Overlay(1, 0, make([]byte, 4), 8192)
	if string(out) != "AABB" {
		t.Fatalf("overlay = %q, want AABB", out)
	}
}

func TestOverlayPageMode(t *testing.T) {
	l := NewList(1)
	blockSize := 8
	page := []byte("PAGEDATA")
	if err := l.SetIntention(Record{File: 1, Kind: PageKind, Block: 1, Data: page}); err != nil {
		t.Fatal(err)
	}
	// Read bytes [4, 12): last 4 of block 0 (base) + first 4 of block 1.
	base := []byte("baseXXXX")
	out := l.Overlay(1, 4, base, blockSize)
	if string(out) != "basePAGE" {
		t.Fatalf("overlay = %q, want basePAGE", out)
	}
}

func TestOverlayPartialIntersections(t *testing.T) {
	l := NewList(1)
	if err := l.SetIntention(Record{File: 1, Kind: RecordKind, Offset: 0, Length: 10, Data: bytes.Repeat([]byte("W"), 10)}); err != nil {
		t.Fatal(err)
	}
	// Read window [5, 15): first half overlaps the write.
	out := l.Overlay(1, 5, bytes.Repeat([]byte("."), 10), 8192)
	if string(out) != "WWWWW....." {
		t.Fatalf("overlay = %q", out)
	}
}

func TestStrings(t *testing.T) {
	if Tentative.String() != "tentative" || Committed.String() != "commit" || Aborted.String() != "abort" {
		t.Fatal("status strings wrong")
	}
	if WAL.String() != "wal" || ShadowPage.String() != "shadow-page" {
		t.Fatal("technique strings wrong")
	}
}
