// Package intentions implements the intentions-list approach to transaction
// recovery chosen in §6.6–§6.7: each transaction accumulates a list of
// intention records — descriptors of the data item and of the tentative data
// item holding its isolated copy — plus an intention flag recording the
// transaction's status (tentative, commit, abort).
//
// When the flag moves to commit, each intention is made permanent with one
// of the two techniques of §6.7, chosen per the paper's rule: write-ahead
// logging when the affected blocks are contiguous (and always for
// record-mode intentions, where tying up a whole block would be wasteful),
// and the shadow-page technique otherwise. After the changes are permanent,
// the records are deleted from the list.
//
// The operations follow the paper's naming: SetIntention, GetIntentions and
// RemoveIntentions are the set-intention, get-intention and remove-intention
// of §6.7.
package intentions

import (
	"fmt"
	"sort"
	"sync"
)

// Status is the intention flag (§6.7): the status of a transaction.
type Status int

// Intention-flag values.
const (
	// Tentative is the status during the first (locking) phase.
	Tentative Status = iota + 1
	// Committed means the changes in the list are to be made permanent.
	Committed
	// Aborted means the changes are to be discarded.
	Aborted
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Tentative:
		return "tentative"
	case Committed:
		return "commit"
	case Aborted:
		return "abort"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Technique selects how an intention is made permanent (§6.7).
type Technique int

// Techniques.
const (
	// WAL is write-ahead logging: the after-image goes to the log and the
	// in-place blocks are rewritten, preserving block contiguity.
	WAL Technique = iota + 1
	// ShadowPage writes the tentative block to a fresh disk block and swaps
	// the descriptor in the file index table, destroying contiguity but
	// avoiding the in-place copy.
	ShadowPage
)

// String implements fmt.Stringer.
func (t Technique) String() string {
	switch t {
	case WAL:
		return "wal"
	case ShadowPage:
		return "shadow-page"
	default:
		return fmt.Sprintf("Technique(%d)", int(t))
	}
}

// Kind distinguishes the granularity of the tentative data item.
type Kind int

// Kinds of intentions.
const (
	// RecordKind is a byte-range after-image (record mode); the tentative
	// item is represented by fragments or blocks as needed (§6.7).
	RecordKind Kind = iota + 1
	// PageKind is a whole-block after-image (page or file mode).
	PageKind
)

// Record is one intention: the descriptors of the data item and of its
// tentative copy (§6.7).
type Record struct {
	// Seq orders intentions within a transaction.
	Seq int
	// File is the data item's file.
	File uint64
	// Kind selects how the remaining fields are read.
	Kind Kind
	// Offset/Length describe a record-mode byte range; Block a page-mode
	// logical block index.
	Offset int64
	Length int
	Block  int
	// Data is the tentative data item's contents (the after-image).
	Data []byte
	// Technique is filled when the transaction commits, per the contiguity
	// rule; zero while tentative.
	Technique Technique
}

// List is one transaction's intentions list plus its intention flag. It is
// safe for concurrent use.
type List struct {
	mu      sync.Mutex
	txn     uint64
	status  Status
	records []Record
	nextSeq int
}

// NewList returns an empty tentative list for transaction txn.
func NewList(txn uint64) *List {
	return &List{txn: txn, status: Tentative}
}

// Txn returns the owning transaction.
func (l *List) Txn() uint64 { return l.txn }

// Status returns the intention flag.
func (l *List) Status() Status {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.status
}

// SetStatus moves the intention flag. The legal transitions are
// Tentative→Committed and Tentative→Aborted; anything else is an error.
func (l *List) SetStatus(s Status) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.status != Tentative {
		return fmt.Errorf("intentions: transaction %d already %v", l.txn, l.status)
	}
	if s != Committed && s != Aborted {
		return fmt.Errorf("intentions: invalid transition to %v", s)
	}
	l.status = s
	return nil
}

// SetIntention appends or merges an intention (the paper's set-intention).
// A page-mode intention for a block already in the list replaces that
// record's data; a record-mode intention is appended as-is (later records
// win on overlap, preserving write order).
func (l *List) SetIntention(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.status != Tentative {
		return fmt.Errorf("intentions: transaction %d is %v; no new intentions", l.txn, l.status)
	}
	if rec.Kind == PageKind {
		for i := range l.records {
			r := &l.records[i]
			if r.Kind == PageKind && r.File == rec.File && r.Block == rec.Block {
				r.Data = append(r.Data[:0], rec.Data...)
				return nil
			}
		}
	}
	rec.Seq = l.nextSeq
	l.nextSeq++
	cp := make([]byte, len(rec.Data))
	copy(cp, rec.Data)
	rec.Data = cp
	l.records = append(l.records, rec)
	return nil
}

// GetIntentions returns the records in sequence order (the paper's
// get-intention). The returned slice is a copy; Data buffers are shared and
// must not be mutated.
func (l *List) GetIntentions() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.records))
	copy(out, l.records)
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// IntentionsForFile returns the records touching one file, in order.
func (l *List) IntentionsForFile(file uint64) []Record {
	var out []Record
	for _, r := range l.GetIntentions() {
		if r.File == file {
			out = append(out, r)
		}
	}
	return out
}

// Files returns the distinct files touched, in first-touch order.
func (l *List) Files() []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	for _, r := range l.GetIntentions() {
		if !seen[r.File] {
			seen[r.File] = true
			out = append(out, r.File)
		}
	}
	return out
}

// Len returns the number of intention records.
func (l *List) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// AssignTechniques fills each record's Technique using the paper's rule
// (§6.7): record-mode intentions always use WAL; page-mode intentions use
// WAL when contiguous(file) reports the file's affected blocks are stored
// contiguously, and the shadow-page technique otherwise.
func (l *List) AssignTechniques(contiguous func(file uint64) bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	verdicts := map[uint64]bool{}
	for i := range l.records {
		r := &l.records[i]
		if r.Kind == RecordKind {
			r.Technique = WAL
			continue
		}
		v, ok := verdicts[r.File]
		if !ok {
			v = contiguous(r.File)
			verdicts[r.File] = v
		}
		if v {
			r.Technique = WAL
		} else {
			r.Technique = ShadowPage
		}
	}
}

// AdjustTechniques lets the caller override the assigned technique per
// record (e.g. a shadow-page intention for a block that does not exist yet
// has no original location to shadow and must fall back to WAL).
func (l *List) AdjustTechniques(fn func(Record) Technique) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.records {
		l.records[i].Technique = fn(l.records[i])
	}
}

// RemoveIntentions deletes records once their changes are permanent (the
// paper's remove-intention): "after making the changes permanent the records
// from the intentions list are deleted" (§6.7). It removes the records with
// the given sequence numbers.
func (l *List) RemoveIntentions(seqs ...int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	drop := make(map[int]bool, len(seqs))
	for _, s := range seqs {
		drop[s] = true
	}
	kept := l.records[:0]
	for _, r := range l.records {
		if !drop[r.Seq] {
			kept = append(kept, r)
		}
	}
	l.records = kept
}

// Overlay applies the transaction's tentative view of file on top of base:
// base is the committed content starting at byte offset off, and every
// intention overlapping [off, off+len(base)) is patched in, later intentions
// last. blockSize converts page-mode blocks to byte ranges.
func (l *List) Overlay(file uint64, off int64, base []byte, blockSize int) []byte {
	out := base
	for _, r := range l.GetIntentions() {
		if r.File != file {
			continue
		}
		var rOff int64
		var rData []byte
		switch r.Kind {
		case PageKind:
			rOff = int64(r.Block) * int64(blockSize)
			rData = r.Data
		default:
			rOff = r.Offset
			rData = r.Data
		}
		end := off + int64(len(out))
		rEnd := rOff + int64(len(rData))
		if rEnd <= off || rOff >= end {
			continue
		}
		// Intersection [lo, hi) in absolute bytes.
		lo, hi := rOff, rEnd
		if lo < off {
			lo = off
		}
		if hi > end {
			hi = end
		}
		copy(out[lo-off:hi-off], rData[lo-rOff:hi-rOff])
	}
	return out
}
