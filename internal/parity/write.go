package parity

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/device"
	"repro/internal/diskservice"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// Put writes len(data)/FragmentSize contiguous data fragments starting at
// addr, keeping every touched stripe's parity invariant. A write covering a
// whole stripe computes parity from the new data alone and fans out K+1
// writes; a partial write does a read-modify-write parity update; in
// degraded mode the lost unit's content is folded into the parity so it
// stays reconstructable. Stripes are written concurrently, each under its
// stripe lock.
//
// StableOnly writes (shadow pages, deferred FIT mirrors) pass through to the
// member disks' stable stores untouched — stable storage is its own
// mirrored redundancy and takes no part in the parity scheme.
//
// A disk failing in the middle of a partial-stripe write can leave that
// stripe's parity stale (the classic RAID-5 "write hole"; closing it needs
// a write-intent journal, out of scope here). Failures between writes —
// the fault-injection scenarios the experiments exercise — always leave
// every stripe consistent.
func (a *Array) Put(addr int, data []byte, opts diskservice.PutOptions) error {
	return a.PutCtx(context.Background(), addr, data, opts)
}

// PutCtx is Put carrying a trace context; see GetCtx.
func (a *Array) PutCtx(ctx context.Context, addr int, data []byte, opts diskservice.PutOptions) error {
	_, op := a.obsRec.StartOp(ctx, obs.LayerParity, "put")
	op.Span().AddBytes(len(data))
	err := a.put(addr, data, opts)
	op.End(err)
	return err
}

func (a *Array) put(addr int, data []byte, opts diskservice.PutOptions) error {
	if len(data) == 0 || len(data)%FragmentSize != 0 {
		return fmt.Errorf("parity: put of %d bytes is not whole fragments", len(data))
	}
	n := len(data) / FragmentSize
	if err := a.checkSpan(addr, n); err != nil {
		return err
	}
	if err := a.alive(); err != nil {
		return err
	}
	spans := a.planSpans(addr, n)
	if opts.Stability == diskservice.StableOnly {
		return a.putStable(spans, data, opts)
	}

	// Group the spans by stripe (planSpans emits them in order).
	var groups [][]vspan
	for _, sp := range spans {
		if g := len(groups); g > 0 && groups[g-1][0].stripe == sp.stripe {
			groups[g-1] = append(groups[g-1], sp)
		} else {
			groups = append(groups, []vspan{sp})
		}
	}
	if len(groups) == 1 {
		return a.writeStripe(groups[0], data, opts)
	}
	tasks := make([]func() error, len(groups))
	for i, g := range groups {
		g := g
		tasks[i] = func() error { return a.writeStripe(g, data, opts) }
	}
	return a.fanout(tasks)
}

// putStable forwards the spans to the member disks' stable stores at their
// physical addresses. No parity, no stripe locks: stable storage mirrors
// each disk one-to-one and survives its main device independently.
func (a *Array) putStable(spans []vspan, data []byte, opts diskservice.PutOptions) error {
	disks, _, _, _ := a.snapshot()
	perDisk := make(map[int][]pspan)
	for _, sp := range spans {
		d := a.dataDisk(sp.stripe, sp.j)
		perDisk[d] = append(perDisk[d], pspan{
			phys: a.physAddr(d, sp.stripe, sp.off), frags: sp.frags, bufOff: sp.bufOff,
		})
	}
	var tasks []func() error
	for d, ps := range perDisk {
		srv, ps := disks[d], coalesce(ps)
		tasks = append(tasks, func() error {
			for _, p := range ps {
				if err := srv.Put(p.phys, data[p.bufOff:p.bufOff+p.frags*FragmentSize], opts); err != nil {
					return err
				}
			}
			return nil
		})
	}
	return a.fanout(tasks)
}

// writeStripe writes one stripe's spans under the stripe lock, retrying once
// through the degraded path if a disk fails mid-write.
func (a *Array) writeStripe(spans []vspan, data []byte, opts diskservice.PutOptions) error {
	stripe := spans[0].stripe
	lk := a.stripeLock(stripe)
	lk.Lock()
	defer lk.Unlock()
	err := a.writeStripeLocked(stripe, spans, data, opts)
	if err != nil && errors.Is(err, device.ErrFailed) && !errors.Is(err, ErrTooManyFailures) {
		// First failure, absorbed by noteFailure: redo via the degraded path.
		err = a.writeStripeLocked(stripe, spans, data, opts)
	}
	return err
}

func (a *Array) writeStripeLocked(stripe int, spans []vspan, data []byte, opts diskservice.PutOptions) error {
	disks, failed, rebuilding, w := a.snapshot()
	// A rebuilt stripe (below the watermark) is healthy: its unit on the
	// replacement disk is in sync and must be written like any other.
	healthy := failed < 0 || (rebuilding && stripe < w)
	total := 0
	for _, sp := range spans {
		total += sp.frags
	}
	if total == a.k*a.unit {
		return a.writeFullStripe(disks, healthy, failed, stripe, spans, data, opts)
	}
	if healthy {
		return a.writeRMW(disks, stripe, spans, data, opts)
	}
	return a.writeDegraded(disks, failed, stripe, spans, data, opts)
}

// getNoted / putNoted wrap member-disk I/O, recording an observed failure so
// the array flips to degraded mode; a second distinct failure is fatal.
func (a *Array) getNoted(srv *diskservice.Server, d, addr, frags int) ([]byte, error) {
	b, err := srv.Get(addr, frags, diskservice.GetOptions{})
	if err != nil && errors.Is(err, device.ErrFailed) && !a.noteFailure(d) {
		return nil, fmt.Errorf("%w: disk %d: %v", ErrDoubleFailure, d, err)
	}
	return b, err
}

func (a *Array) putNoted(srv *diskservice.Server, d, addr int, data []byte, opts diskservice.PutOptions) error {
	err := srv.Put(addr, data, opts)
	if err != nil && errors.Is(err, device.ErrFailed) && !a.noteFailure(d) {
		return fmt.Errorf("%w: disk %d: %v", ErrDoubleFailure, d, err)
	}
	return err
}

// stableEcho derives the pass-through options for the stable copy of a unit
// whose main write cannot happen (its disk is lost): the stable store is
// still alive and must stay current for crash recovery.
func stableEcho(opts diskservice.PutOptions) (diskservice.PutOptions, bool) {
	if opts.Stability == diskservice.MainAndStable {
		return diskservice.PutOptions{Stability: diskservice.StableOnly, WaitStable: opts.WaitStable}, true
	}
	return diskservice.PutOptions{}, false
}

// writeFullStripe handles a write covering every data unit of the stripe:
// parity is the XOR of the new units — no reads at all. In degraded mode the
// lost disk (data or parity) is simply skipped; the remaining K writes still
// fully determine the stripe.
func (a *Array) writeFullStripe(disks []*diskservice.Server, healthy bool, failed, stripe int, spans []vspan, data []byte, opts diskservice.PutOptions) error {
	par := make([]byte, a.unit*FragmentSize)
	for _, sp := range spans {
		xorInto(par, data[sp.bufOff:sp.bufOff+sp.frags*FragmentSize])
	}
	skip := -1
	if !healthy {
		skip = failed
	}
	var tasks []func() error
	for _, sp := range spans {
		sp := sp
		d := a.dataDisk(stripe, sp.j)
		if d == skip {
			if echo, ok := stableEcho(opts); ok {
				srv := disks[d]
				phys := a.physAddr(d, stripe, sp.off)
				chunk := data[sp.bufOff : sp.bufOff+sp.frags*FragmentSize]
				tasks = append(tasks, func() error { return srv.Put(phys, chunk, echo) })
			}
			continue
		}
		srv := disks[d]
		phys := a.physAddr(d, stripe, sp.off)
		chunk := data[sp.bufOff : sp.bufOff+sp.frags*FragmentSize]
		tasks = append(tasks, func() error { return a.putNoted(srv, d, phys, chunk, opts) })
	}
	if p := a.parityDisk(stripe); p != skip {
		srv := disks[p]
		phys := a.physAddr(p, stripe, 0)
		tasks = append(tasks, func() error {
			return a.putNoted(srv, p, phys, par, diskservice.PutOptions{})
		})
	}
	if err := a.fanout(tasks); err != nil {
		return err
	}
	if skip >= 0 {
		a.met.Inc(metrics.ParityDegradedWrites)
	} else {
		a.met.Inc(metrics.ParityFullStripeWrites)
	}
	return nil
}

// envelope returns the union [lo, hi) of the spans' fragment positions
// within their stripe units.
func envelope(spans []vspan) (lo, hi int) {
	lo, hi = spans[0].off, spans[0].off+spans[0].frags
	for _, sp := range spans[1:] {
		if sp.off < lo {
			lo = sp.off
		}
		if e := sp.off + sp.frags; e > hi {
			hi = e
		}
	}
	return lo, hi
}

// writeRMW handles a partial-stripe write on a healthy stripe with the
// classic small-write sequence: read old data and old parity, fold
// oldParity XOR oldData XOR newData, write new data and new parity — two
// fan-out phases instead of the full-stripe path's one.
func (a *Array) writeRMW(disks []*diskservice.Server, stripe int, spans []vspan, data []byte, opts diskservice.PutOptions) error {
	p := a.parityDisk(stripe)
	lo, hi := envelope(spans)

	oldData := make([][]byte, len(spans))
	var oldParity []byte
	var tasks []func() error
	for i, sp := range spans {
		i, sp := i, sp
		d := a.dataDisk(stripe, sp.j)
		srv := disks[d]
		phys := a.physAddr(d, stripe, sp.off)
		tasks = append(tasks, func() error {
			b, err := a.getNoted(srv, d, phys, sp.frags)
			oldData[i] = b
			return err
		})
	}
	tasks = append(tasks, func() error {
		b, err := a.getNoted(disks[p], p, a.physAddr(p, stripe, lo), hi-lo)
		oldParity = b
		return err
	})
	if err := a.fanout(tasks); err != nil {
		return err
	}

	newParity := oldParity // updated in place
	for i, sp := range spans {
		seg := newParity[(sp.off-lo)*FragmentSize : (sp.off-lo+sp.frags)*FragmentSize]
		xorInto(seg, oldData[i])
		xorInto(seg, data[sp.bufOff:sp.bufOff+sp.frags*FragmentSize])
	}

	tasks = tasks[:0]
	for _, sp := range spans {
		sp := sp
		d := a.dataDisk(stripe, sp.j)
		srv := disks[d]
		phys := a.physAddr(d, stripe, sp.off)
		chunk := data[sp.bufOff : sp.bufOff+sp.frags*FragmentSize]
		tasks = append(tasks, func() error { return a.putNoted(srv, d, phys, chunk, opts) })
	}
	tasks = append(tasks, func() error {
		return a.putNoted(disks[p], p, a.physAddr(p, stripe, lo), newParity, diskservice.PutOptions{})
	})
	if err := a.fanout(tasks); err != nil {
		return err
	}
	a.met.Inc(metrics.ParityRMWWrites)
	return nil
}

// writeDegraded handles a partial-stripe write while disk `failed` is lost.
// Three shapes:
//
//   - the parity disk is the lost one: write the data units plainly, parity
//     is regenerated by the eventual rebuild;
//   - the lost disk holds a data unit the write does not touch: ordinary
//     read-modify-write (all participants are alive);
//   - the lost disk holds a touched data unit: its new content cannot be
//     written, so the parity absorbs it — over the lost span's positions the
//     new parity is the XOR of the new lost-unit data with every healthy
//     unit's after-write value, making the lost unit reconstructable.
func (a *Array) writeDegraded(disks []*diskservice.Server, failed, stripe int, spans []vspan, data []byte, opts diskservice.PutOptions) error {
	p := a.parityDisk(stripe)
	if failed == p {
		var tasks []func() error
		for _, sp := range spans {
			sp := sp
			d := a.dataDisk(stripe, sp.j)
			srv := disks[d]
			phys := a.physAddr(d, stripe, sp.off)
			chunk := data[sp.bufOff : sp.bufOff+sp.frags*FragmentSize]
			tasks = append(tasks, func() error { return a.putNoted(srv, d, phys, chunk, opts) })
		}
		if err := a.fanout(tasks); err != nil {
			return err
		}
		a.met.Inc(metrics.ParityDegradedWrites)
		return nil
	}

	// jf is the data unit index living on the lost disk.
	jf := failed
	if failed > p {
		jf = failed - 1
	}
	var lostSpan *vspan
	for i := range spans {
		if spans[i].j == jf {
			lostSpan = &spans[i]
		}
	}
	if lostSpan == nil {
		// Every touched unit and the parity disk are alive.
		if err := a.writeRMW(disks, stripe, spans, data, opts); err != nil {
			return err
		}
		a.met.Inc(metrics.ParityDegradedWrites)
		return nil
	}

	lo, hi := envelope(spans)
	segBytes := (hi - lo) * FragmentSize

	// Phase 1: read the old parity and every healthy data unit over the
	// envelope, in one fan-out.
	oldUnit := make([][]byte, a.k)
	var oldParity []byte
	var tasks []func() error
	for j := 0; j < a.k; j++ {
		if j == jf {
			continue
		}
		j := j
		d := a.dataDisk(stripe, j)
		srv := disks[d]
		phys := a.physAddr(d, stripe, lo)
		tasks = append(tasks, func() error {
			b, err := a.getNoted(srv, d, phys, hi-lo)
			oldUnit[j] = b
			return err
		})
	}
	tasks = append(tasks, func() error {
		b, err := a.getNoted(disks[p], p, a.physAddr(p, stripe, lo), hi-lo)
		oldParity = b
		return err
	})
	if err := a.fanout(tasks); err != nil {
		return err
	}

	// After-images of every unit over the envelope: old data overlaid with
	// the spans' new data. The lost unit is known only over its own span.
	after := make([][]byte, a.k)
	for j := 0; j < a.k; j++ {
		if j == jf {
			after[j] = make([]byte, segBytes)
		} else {
			after[j] = append([]byte(nil), oldUnit[j]...)
		}
	}
	for _, sp := range spans {
		copy(after[sp.j][(sp.off-lo)*FragmentSize:], data[sp.bufOff:sp.bufOff+sp.frags*FragmentSize])
	}

	// New parity: over the lost span's positions it is the XOR of all units'
	// after-images (the lost unit's new data included, so it becomes
	// reconstructable); elsewhere the usual RMW fold, where old XOR after is
	// zero for untouched positions.
	np := make([]byte, segBytes)
	apply := func(s, e int, inLost bool) {
		if s >= e {
			return
		}
		bs, be := (s-lo)*FragmentSize, (e-lo)*FragmentSize
		if inLost {
			for j := 0; j < a.k; j++ {
				xorInto(np[bs:be], after[j][bs:be])
			}
			return
		}
		copy(np[bs:be], oldParity[bs:be])
		for j := 0; j < a.k; j++ {
			if j == jf {
				continue
			}
			xorInto(np[bs:be], oldUnit[j][bs:be])
			xorInto(np[bs:be], after[j][bs:be])
		}
	}
	lostLo, lostHi := lostSpan.off, lostSpan.off+lostSpan.frags
	apply(lo, lostLo, false)
	apply(lostLo, lostHi, true)
	apply(lostHi, hi, false)

	// Phase 2: write the healthy units' new data, the new parity, and the
	// stable echo of the lost unit's data if the caller wanted a stable copy.
	tasks = tasks[:0]
	for _, sp := range spans {
		sp := sp
		d := a.dataDisk(stripe, sp.j)
		srv := disks[d]
		phys := a.physAddr(d, stripe, sp.off)
		chunk := data[sp.bufOff : sp.bufOff+sp.frags*FragmentSize]
		if sp.j == jf {
			if echo, ok := stableEcho(opts); ok {
				tasks = append(tasks, func() error { return srv.Put(phys, chunk, echo) })
			}
			continue
		}
		tasks = append(tasks, func() error { return a.putNoted(srv, d, phys, chunk, opts) })
	}
	tasks = append(tasks, func() error {
		return a.putNoted(disks[p], p, a.physAddr(p, stripe, lo), np, diskservice.PutOptions{})
	})
	if err := a.fanout(tasks); err != nil {
		return err
	}
	a.met.Inc(metrics.ParityDegradedWrites)
	return nil
}
