// Package parity implements a rotating-parity striped layout (RAID-5 style)
// over K+1 disk services: K data units plus one XOR parity unit per stripe,
// with the parity unit rotating across the disks so no single spindle
// becomes the parity bottleneck.
//
// The paper's reliability mechanisms — stable storage (§2.1, §6.6) and
// whole-file replication (§2.1) — both pay at least 2× storage for
// single-failure tolerance. A parity stripe pays (K+1)/K: any one disk can
// fail and every byte remains readable by XOR-reconstructing the missing
// unit from the surviving K disks (a degraded read). A replacement disk is
// brought back in sync by an online rebuild that walks the stripes under
// per-stripe locks while reads and writes continue.
//
// An Array presents the K data units of every stripe as one flat fragment
// space and implements fileservice.Backend, so the file service runs on a
// parity array exactly as it runs on a single disk server — the layout is
// chosen in core.Config, alongside plain striping and replication.
//
// Write paths:
//
//   - A write covering every data unit of a stripe computes the parity by
//     XOR of the new data alone and writes all K+1 units in one fan-out
//     (full-stripe write, no reads).
//   - A smaller write does a read-modify-write parity update: read the old
//     data and old parity for the affected range, then
//     newParity = oldParity XOR oldData XOR newData (2 reads + 2 writes —
//     the classic small-write penalty).
//   - In degraded mode, writes to the failed disk's unit instead recompute
//     parity from the surviving data units, so the lost unit's new content
//     is representable even though the disk is gone.
//
// Parity is an invariant of main storage: parity-unit writes never go to
// stable storage, and reconstruction always reads main copies. Stable
// writes (shadow pages, FIT mirrors) pass through to the underlying disk
// services untouched — each disk's stable store survives its main device's
// failure independently, exactly as in the plain layout.
package parity

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/device"
	"repro/internal/diskservice"
	"repro/internal/fault"
	"repro/internal/freespace"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/simclock"
)

// Sizes re-exported for callers.
const (
	FragmentSize      = diskservice.FragmentSize
	BlockSize         = diskservice.BlockSize
	FragmentsPerBlock = diskservice.FragmentsPerBlock
)

// stripeLockCount is the size of the stripe lock table; stripes hash onto it
// so concurrent writers to different stripes rarely contend while writers to
// the same stripe — whose read-modify-write parity updates must not
// interleave — always serialize.
const stripeLockCount = 64

// Errors.
var (
	ErrTooFewDisks = errors.New("parity: need at least 3 disks (2 data + 1 parity)")
	// ErrTooManyFailures reports a second concurrent disk failure — a parity
	// stripe tolerates exactly one.
	ErrTooManyFailures = errors.New("parity: more than one disk failed")
	// ErrDegraded reports an operation that requires a healthy array.
	ErrDegraded = errors.New("parity: array is degraded")
	// ErrNotFailed reports a replacement of a disk that is not failed.
	ErrNotFailed = errors.New("parity: disk is not failed")
	// ErrBadDisk reports a disk index out of range.
	ErrBadDisk = errors.New("parity: bad disk index")
)

// ErrDoubleFailure reports that a second distinct disk failed while the
// array was already degraded (or mid-rebuild). The stripes' data is no
// longer representable, so the failure is permanent: every subsequent
// operation fails with this error rather than serving reconstructions from
// a stale watermark. It wraps ErrTooManyFailures, so existing checks keep
// matching.
var ErrDoubleFailure = fmt.Errorf("%w: second distinct disk failed; array data lost", ErrTooManyFailures)

// Config configures an Array.
type Config struct {
	// ID identifies the array as a storage backend.
	ID int
	// Disks are the K+1 disk servers the array stripes over. Required,
	// at least three. The array owns the allocatable region of every disk.
	Disks []*diskservice.Server
	// UnitFragments is the stripe unit size in fragments; defaults to 1, so
	// that with K = 4 data disks one 8 KB block is exactly one full stripe
	// and block-aligned writes take the no-read full-stripe path.
	UnitFragments int
	// Metrics receives the parity counters. Optional.
	Metrics *metrics.Set
	// Overlap, when set, brackets multi-disk fan-outs so overlap-aware
	// virtual time credits the parallelism (see simclock.Group). Optional.
	Overlap simclock.Batcher
	// Fault is the fault injector consulted at the rebuild crash points.
	// Optional; nil injects nothing.
	Fault *fault.Injector
	// Obs receives parity-layer latency observations. Optional.
	Obs *obs.Recorder
}

// Array is a rotating-parity striped layout over K+1 disk services,
// presenting the data units as one flat fragment space. It is safe for
// concurrent use and implements fileservice.Backend.
type Array struct {
	id      int
	n, k    int // n = k+1 disks, k data units per stripe
	unit    int // fragments per stripe unit
	stripes int
	met     *metrics.Set
	overlap simclock.Batcher
	fsmap   *freespace.Map // virtual data fragment space

	// mu guards the failure/rebuild state and the disk table (ReplaceDisk
	// swaps entries).
	mu         sync.Mutex
	disks      []*diskservice.Server
	base       []int // first region fragment on each disk
	failed     int   // index of the failed disk, -1 when healthy
	rebuilding bool  // a replacement is installed and being synced
	dead       bool  // a second distinct disk failed: data is lost

	// watermark is the rebuild progress: stripes below it are in sync on
	// the replacement disk. Only meaningful while rebuilding.
	watermark atomic.Int64

	rebuildMu   sync.Mutex // serializes rebuild steppers
	stripeLocks [stripeLockCount]sync.Mutex

	fault  *fault.Injector
	obsRec *obs.Recorder
}

// New builds an array over the given disk servers, claiming the striped
// region on each. It works over freshly formatted disks and over remounted
// ones (the region claim is re-asserted); the virtual allocation map starts
// empty and is rebuilt by the file service's mount-time FIT scan, the same
// trust model as a plain disk's bitmap.
func New(cfg Config) (*Array, error) {
	if len(cfg.Disks) < 3 {
		return nil, ErrTooFewDisks
	}
	unit := cfg.UnitFragments
	if unit <= 0 {
		unit = 1
	}
	a := &Array{
		id:      cfg.ID,
		n:       len(cfg.Disks),
		k:       len(cfg.Disks) - 1,
		unit:    unit,
		met:     cfg.Metrics,
		overlap: cfg.Overlap,
		fault:   cfg.Fault,
		obsRec:  cfg.Obs,
		disks:   append([]*diskservice.Server(nil), cfg.Disks...),
		base:    make([]int, len(cfg.Disks)),
		failed:  -1,
	}
	a.stripes = -1
	for i, d := range a.disks {
		a.base[i] = d.MetadataFragments()
		if s := (d.Capacity() - a.base[i]) / unit; a.stripes < 0 || s < a.stripes {
			a.stripes = s
		}
	}
	if a.stripes <= 0 {
		return nil, fmt.Errorf("parity: disks too small for unit of %d fragments", unit)
	}
	var err error
	a.fsmap, err = freespace.NewMap(a.stripes * a.k * unit)
	if err != nil {
		return nil, err
	}
	if err := a.claimRegions(); err != nil {
		return nil, err
	}
	return a, nil
}

// claimRegions re-asserts the array's ownership of every disk's striped
// region in the underlying allocators.
func (a *Array) claimRegions() error {
	for i, d := range a.disks {
		if err := d.ResetBitmap(); err != nil {
			return err
		}
		if err := d.AllocateAt(a.base[i], a.stripes*a.unit); err != nil {
			return fmt.Errorf("parity: claiming region on disk %d: %w", i, err)
		}
	}
	return nil
}

// Geometry accessors.

// ID returns the backend identifier.
func (a *Array) ID() int { return a.id }

// Disks returns the number of member disks (K+1).
func (a *Array) Disks() int { return a.n }

// DataDisks returns K, the number of data units per stripe.
func (a *Array) DataDisks() int { return a.k }

// Stripes returns the number of stripes.
func (a *Array) Stripes() int { return a.stripes }

// UnitFragments returns the stripe unit size in fragments.
func (a *Array) UnitFragments() int { return a.unit }

// Capacity returns the usable (data) size in fragments — K/(K+1) of the raw
// striped space.
func (a *Array) Capacity() int { return a.stripes * a.k * a.unit }

// FreeFragments returns the number of free data fragments.
func (a *Array) FreeFragments() int { return a.fsmap.FreeCount() }

// MetadataFragments returns 0: the virtual space starts at the first data
// fragment; the member disks' own metadata regions sit below the stripes.
func (a *Array) MetadataFragments() int { return 0 }

// StorageOverhead returns the redundancy cost factor (K+1)/K — the raw
// fragments consumed per data fragment stored.
func (a *Array) StorageOverhead() float64 { return float64(a.n) / float64(a.k) }

// parityDisk returns the disk holding stripe s's parity unit. The parity
// position rotates by stripe so parity update traffic spreads over all
// spindles.
func (a *Array) parityDisk(s int) int { return s % a.n }

// dataDisk returns the disk holding data unit j of stripe s (the data units
// occupy the non-parity disks in index order).
func (a *Array) dataDisk(s, j int) int {
	if p := a.parityDisk(s); j >= p {
		return j + 1
	}
	return j
}

// physAddr returns the physical fragment address of offset off within
// stripe s's unit on disk d.
func (a *Array) physAddr(d, s, off int) int { return a.base[d] + s*a.unit + off }

// Allocation — the file service's allocator surface, answered from the
// array's own free-space map over the virtual data space. Underlying disks
// never allocate: the array owns their whole region.

// AllocateFragments claims n contiguous data fragments.
func (a *Array) AllocateFragments(n int) (int, error) { return a.fsmap.Allocate(n) }

// AllocateFragmentsNear is AllocateFragments preferring addresses near hint.
func (a *Array) AllocateFragmentsNear(hint, n int) (int, error) { return a.fsmap.AllocateNear(hint, n) }

// AllocateBlocks claims n contiguous blocks (4n fragments).
func (a *Array) AllocateBlocks(n int) (int, error) { return a.fsmap.Allocate(n * FragmentsPerBlock) }

// AllocateBlocksNear is AllocateBlocks with a placement hint.
func (a *Array) AllocateBlocksNear(hint, n int) (int, error) {
	return a.fsmap.AllocateNear(hint, n*FragmentsPerBlock)
}

// AllocateAt claims the exact span [addr, addr+n).
func (a *Array) AllocateAt(addr, n int) error { return a.fsmap.AllocateAt(addr, n) }

// Free returns n fragments starting at addr to the free pool.
func (a *Array) Free(addr, n int) error { return a.fsmap.Free(addr, n) }

// ResetBitmap discards all virtual allocations and re-asserts the region
// claims on the member disks (the file service's mount-time rebuild then
// re-marks every structure reachable from the file map).
func (a *Array) ResetBitmap() error {
	fsmap, err := freespace.NewMap(a.Capacity())
	if err != nil {
		return err
	}
	a.fsmap = fsmap
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.claimRegions()
}

// InvalidateCache empties every member disk's read-ahead cache.
func (a *Array) InvalidateCache() {
	a.mu.Lock()
	disks := append([]*diskservice.Server(nil), a.disks...)
	a.mu.Unlock()
	for _, d := range disks {
		d.InvalidateCache()
	}
}

// Flush makes every member disk's buffered state durable, in parallel. A
// failed member is skipped — its durable state is unreachable until rebuild.
func (a *Array) Flush() error {
	disks, failedIdx, _, _ := a.snapshot()
	tasks := make([]func() error, 0, len(disks))
	for i, d := range disks {
		if i == failedIdx {
			continue
		}
		d := d
		tasks = append(tasks, func() error { return d.Flush() })
	}
	err := a.fanout(tasks)
	if err != nil && errors.Is(err, device.ErrFailed) && failedIdx < 0 {
		// A member died between the snapshot and the flush; one failure is
		// survivable, so the flush of the survivors stands.
		return nil
	}
	return err
}

// snapshot returns a consistent view of the disk table and failure state.
func (a *Array) snapshot() (disks []*diskservice.Server, failed int, rebuilding bool, watermark int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.disks, a.failed, a.rebuilding, int(a.watermark.Load())
}

// noteFailure records that disk d was observed failing. It returns true if
// the array can continue (d is the only failure); a second distinct failure
// marks the array dead and returns false.
func (a *Array) noteFailure(d int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch a.failed {
	case -1:
		a.failed = d
		a.rebuilding = false
		a.watermark.Store(0)
		return true
	case d:
		if a.rebuilding {
			// The replacement itself died: back to plain degraded mode.
			a.rebuilding = false
			a.watermark.Store(0)
		}
		return true
	default:
		a.dead = true
		return false
	}
}

// markDead records a second distinct failure observed without going through
// noteFailure (a survivor dying inside a reconstruction fan-out).
func (a *Array) markDead() {
	a.mu.Lock()
	a.dead = true
	a.mu.Unlock()
}

// alive returns ErrDoubleFailure once the array has seen two distinct
// failures; operations call it at entry so none serve data (or reconstruct
// from a stale watermark) after the array is lost.
func (a *Array) alive() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.dead {
		return ErrDoubleFailure
	}
	return nil
}

// MarkFailed declares disk i failed (e.g. fault injection noticed out of
// band). Subsequent reads of its units reconstruct by XOR; writes skip it.
// A second distinct failure — including one during an in-flight rebuild —
// returns ErrDoubleFailure and permanently fails the array.
func (a *Array) MarkFailed(i int) error {
	if i < 0 || i >= a.n {
		return ErrBadDisk
	}
	if !a.noteFailure(i) {
		return ErrDoubleFailure
	}
	return nil
}

// FailedDisk returns the index of the failed disk, or -1 when healthy.
func (a *Array) FailedDisk() int {
	_, f, _, _ := a.snapshot()
	return f
}

// Degraded reports whether the array is running with a lost or
// not-yet-rebuilt disk.
func (a *Array) Degraded() bool { return a.FailedDisk() >= 0 }

// stripeLock returns the lock covering stripe s.
func (a *Array) stripeLock(s int) *sync.Mutex { return &a.stripeLocks[s%stripeLockCount] }

// fanout runs the tasks concurrently inside an overlap batch, so transfers
// dispatched to different disks occupy overlapping virtual intervals (and
// overlapping wall-clock windows when the drives simulate occupancy). The
// first error in task order is returned.
func (a *Array) fanout(tasks []func() error) error {
	if len(tasks) == 0 {
		return nil
	}
	if len(tasks) == 1 {
		return tasks[0]()
	}
	if a.overlap != nil {
		a.overlap.EnterBatch()
		defer a.overlap.LeaveBatch()
	}
	errs := make([]error, len(tasks))
	var wg sync.WaitGroup
	for i, t := range tasks {
		wg.Add(1)
		go func(i int, t func() error) {
			defer wg.Done()
			errs[i] = t()
		}(i, t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// xorInto folds src into dst byte-wise (dst ^= src).
func xorInto(dst, src []byte) {
	_ = dst[len(src)-1]
	for i, b := range src {
		dst[i] ^= b
	}
}

// vspan is one contiguous fragment range within a single stripe unit, the
// planning granule of the scatter-gather paths.
type vspan struct {
	stripe int
	j      int // data unit index within the stripe
	off    int // fragment offset within the unit
	frags  int
	bufOff int // byte offset in the request buffer
}

// planSpans splits the virtual range [addr, addr+n) into per-unit spans, in
// increasing virtual order.
func (a *Array) planSpans(addr, n int) []vspan {
	spans := make([]vspan, 0, n/a.unit+2)
	for covered := 0; covered < n; {
		va := addr + covered
		u := va / a.unit
		off := va % a.unit
		frags := a.unit - off
		if frags > n-covered {
			frags = n - covered
		}
		spans = append(spans, vspan{
			stripe: u / a.k, j: u % a.k, off: off, frags: frags,
			bufOff: covered * FragmentSize,
		})
		covered += frags
	}
	return spans
}

func (a *Array) checkSpan(addr, n int) error {
	if n <= 0 || addr < 0 || addr+n > a.Capacity() {
		return fmt.Errorf("%w: [%d,%d) of %d", device.ErrOutOfRange, addr, addr+n, a.Capacity())
	}
	return nil
}

// Get reads n contiguous data fragments starting at addr. Healthy units are
// fetched with per-disk coalesced reads fanned out across the spindles;
// units on a failed disk are reconstructed by XOR of the surviving K disks
// under the stripe lock (degraded read). FromStable passes through to the
// member disks' stable stores, which survive a main-device failure
// independently.
func (a *Array) Get(addr, n int, opts diskservice.GetOptions) ([]byte, error) {
	return a.GetCtx(context.Background(), addr, n, opts)
}

// GetCtx is Get carrying a trace context: the read is bracketed as a
// parity-layer operation. Member-disk I/O is observed by the disk service's
// own instrumentation.
func (a *Array) GetCtx(ctx context.Context, addr, n int, opts diskservice.GetOptions) ([]byte, error) {
	_, op := a.obsRec.StartOp(ctx, obs.LayerParity, "get")
	data, err := a.get(addr, n, opts)
	op.Span().AddBytes(len(data))
	op.End(err)
	return data, err
}

func (a *Array) get(addr, n int, opts diskservice.GetOptions) ([]byte, error) {
	if err := a.checkSpan(addr, n); err != nil {
		return nil, err
	}
	if err := a.alive(); err != nil {
		return nil, err
	}
	out := make([]byte, n*FragmentSize)
	if err := a.readSpans(out, a.planSpans(addr, n), opts, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// pspan is a physically contiguous read on one disk serving one or more
// virtual spans.
type pspan struct {
	phys, frags, bufOff int
}

// readSpans fills out with the spans' data: healthy spans as coalesced
// per-disk reads in one fan-out, degraded spans by reconstruction. depth
// guards the one retry after an in-flight disk failure.
func (a *Array) readSpans(out []byte, spans []vspan, opts diskservice.GetOptions, depth int) error {
	disks, failedIdx, rebuilding, w := a.snapshot()
	perDisk := make(map[int][]pspan)
	var degraded []vspan
	for _, sp := range spans {
		d := a.dataDisk(sp.stripe, sp.j)
		// FromStable reads never degrade: the stable store of a failed main
		// device is a separate pair of drives and stays reachable.
		if d == failedIdx && !opts.FromStable && !(rebuilding && sp.stripe < w) {
			degraded = append(degraded, sp)
			continue
		}
		perDisk[d] = append(perDisk[d], pspan{
			phys: a.physAddr(d, sp.stripe, sp.off), frags: sp.frags, bufOff: sp.bufOff,
		})
	}
	var tasks []func() error
	diskOrder := make([]int, 0, len(perDisk))
	for d := range perDisk {
		diskOrder = append(diskOrder, d)
	}
	sort.Ints(diskOrder)
	for _, d := range diskOrder {
		d, ps := d, coalesce(perDisk[d])
		srv := disks[d]
		tasks = append(tasks, func() error {
			for _, p := range ps {
				data, err := srv.Get(p.phys, p.frags, opts)
				if err != nil {
					if errors.Is(err, device.ErrFailed) && !opts.FromStable && !a.noteFailure(d) {
						return fmt.Errorf("%w: disk %d: %v", ErrDoubleFailure, d, err)
					}
					return err
				}
				copy(out[p.bufOff:], data)
			}
			return nil
		})
	}
	for _, sp := range degraded {
		sp := sp
		tasks = append(tasks, func() error {
			return a.reconstructSpan(out[sp.bufOff:sp.bufOff+sp.frags*FragmentSize], sp)
		})
	}
	err := a.fanout(tasks)
	if err != nil && errors.Is(err, device.ErrFailed) && !errors.Is(err, ErrTooManyFailures) &&
		!opts.FromStable && depth == 0 {
		// A disk died mid-read and the failure was absorbed (noteFailure):
		// re-plan with the updated failure state and reconstruct.
		return a.readSpans(out, spans, opts, 1)
	}
	return err
}

// coalesce merges physically adjacent spans whose buffer targets are also
// adjacent, so a long virtual run costs one underlying get-block per disk
// per parity rotation rather than one per stripe.
func coalesce(ps []pspan) []pspan {
	out := ps[:0]
	for _, p := range ps {
		if n := len(out); n > 0 &&
			out[n-1].phys+out[n-1].frags == p.phys &&
			out[n-1].bufOff+out[n-1].frags*FragmentSize == p.bufOff {
			out[n-1].frags += p.frags
			continue
		}
		out = append(out, p)
	}
	return out
}

// reconstructSpan recovers the fragment range of one lost unit by XOR across
// the surviving K disks (their data units plus the parity unit), under the
// stripe lock so a concurrent read-modify-write cannot be observed between
// its data and parity writes.
func (a *Array) reconstructSpan(dst []byte, sp vspan) error {
	lk := a.stripeLock(sp.stripe)
	lk.Lock()
	defer lk.Unlock()
	if err := a.alive(); err != nil {
		return err
	}
	disks, failedIdx, _, _ := a.snapshot()
	lost := a.dataDisk(sp.stripe, sp.j)
	if failedIdx >= 0 && failedIdx != lost {
		// A different disk is the failed one, so the "survivors" of this
		// reconstruction would include a failed disk.
		a.markDead()
		return ErrDoubleFailure
	}
	for i := range dst {
		dst[i] = 0
	}
	bufs := make([][]byte, a.n)
	var tasks []func() error
	for d := 0; d < a.n; d++ {
		if d == lost {
			continue
		}
		d := d
		srv := disks[d]
		phys := a.physAddr(d, sp.stripe, sp.off)
		tasks = append(tasks, func() error {
			data, err := srv.Get(phys, sp.frags, diskservice.GetOptions{})
			bufs[d] = data
			return err
		})
	}
	if err := a.fanout(tasks); err != nil {
		if errors.Is(err, device.ErrFailed) {
			// A survivor died while reconstructing: second distinct failure.
			a.markDead()
			return fmt.Errorf("%w: %v", ErrDoubleFailure, err)
		}
		return err
	}
	for _, b := range bufs {
		if b != nil {
			xorInto(dst, b)
		}
	}
	a.met.Inc(metrics.ParityDegradedReads)
	return nil
}
