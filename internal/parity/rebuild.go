package parity

import (
	"errors"
	"fmt"

	"repro/internal/device"
	"repro/internal/diskservice"
	"repro/internal/fault"
	"repro/internal/metrics"
)

// ErrNoReplacement reports a rebuild attempt with no replacement installed.
var ErrNoReplacement = errors.New("parity: degraded with no replacement disk installed")

// Fault points bracketing the per-stripe resync write. Dying before the Put
// leaves the stripe stale on the replacement; dying after it leaves the
// stripe synced but the watermark not advanced — either way a post-crash
// rebuild restarted from stripe zero converges, which is what the torture
// harness proves. Arm them with After to pick how far the rebuild gets.
var (
	PtRebuildBeforePut = fault.Register("parity.rebuild.before-put")
	PtRebuildAfterPut  = fault.Register("parity.rebuild.after-put")
)

// ReplaceDisk installs srv as the replacement for the failed disk i and
// arms the rebuild: the watermark drops to zero and every stripe is
// considered out of sync on the replacement until Rebuild (or RebuildStep)
// walks past it. Reattaching the original server after a device Repair is
// also accepted. The replacement's stable store starts empty, exactly as a
// physically swapped disk's would.
func (a *Array) ReplaceDisk(i int, srv *diskservice.Server) error {
	if i < 0 || i >= a.n {
		return ErrBadDisk
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.dead {
		return ErrDoubleFailure
	}
	if a.failed != i {
		return ErrNotFailed
	}
	// The striped region keeps the original disk's base address so the
	// stripe→address mapping never changes; the replacement must fit it.
	if srv.MetadataFragments() > a.base[i] {
		return fmt.Errorf("parity: replacement metadata region (%d) exceeds slot base %d",
			srv.MetadataFragments(), a.base[i])
	}
	if srv.Capacity() < a.base[i]+a.stripes*a.unit {
		return fmt.Errorf("parity: replacement too small: %d < %d fragments",
			srv.Capacity(), a.base[i]+a.stripes*a.unit)
	}
	if err := srv.ResetBitmap(); err != nil {
		return err
	}
	if err := srv.AllocateAt(a.base[i], a.stripes*a.unit); err != nil {
		return fmt.Errorf("parity: claiming region on replacement: %w", err)
	}
	// Copy-on-write: snapshot() hands the disks slice out without the lock.
	nd := append([]*diskservice.Server(nil), a.disks...)
	nd[i] = srv
	a.disks = nd
	a.rebuilding = true
	a.watermark.Store(0)
	return nil
}

// Rebuild resyncs the replacement disk completely, stripe by stripe. Each
// stripe is reconstructed and written under its stripe lock, so reads and
// writes proceed concurrently throughout; stripes below the advancing
// watermark are already served healthily. Progress is visible in the
// parity.rebuild.stripes counter and via RebuildProgress.
func (a *Array) Rebuild() error {
	for {
		done, err := a.RebuildStep(256)
		if err != nil || done {
			return err
		}
	}
}

// RebuildStep resyncs up to max stripes and returns done=true once the
// array is healthy again. The watermark persists across calls, so a rebuild
// is resumable in bounded slices.
func (a *Array) RebuildStep(max int) (bool, error) {
	a.rebuildMu.Lock()
	defer a.rebuildMu.Unlock()
	for i := 0; i < max; i++ {
		a.mu.Lock()
		f, rebuilding, healthy := a.failed, a.rebuilding, a.failed < 0
		dead := a.dead
		disks := a.disks
		a.mu.Unlock()
		if dead {
			return false, ErrDoubleFailure
		}
		if healthy {
			return true, nil
		}
		if !rebuilding {
			return false, ErrNoReplacement
		}
		s := int(a.watermark.Load())
		if s >= a.stripes {
			a.mu.Lock()
			a.failed = -1
			a.rebuilding = false
			a.mu.Unlock()
			return true, nil
		}
		if err := a.rebuildStripe(disks, f, s); err != nil {
			return false, err
		}
	}
	return false, nil
}

// rebuildStripe reconstructs stripe s's unit on the replacement disk f by
// XOR across the other n-1 disks, then advances the watermark — all under
// the stripe lock, so a concurrent write either lands before (and is folded
// into the reconstruction) or after (and sees the stripe as healthy).
func (a *Array) rebuildStripe(disks []*diskservice.Server, f, s int) error {
	lk := a.stripeLock(s)
	lk.Lock()
	defer lk.Unlock()

	unit := make([]byte, a.unit*FragmentSize)
	bufs := make([][]byte, a.n)
	var tasks []func() error
	for d := 0; d < a.n; d++ {
		if d == f {
			continue
		}
		d := d
		srv := disks[d]
		phys := a.physAddr(d, s, 0)
		tasks = append(tasks, func() error {
			b, err := srv.Get(phys, a.unit, diskservice.GetOptions{})
			bufs[d] = b
			return err
		})
	}
	if err := a.fanout(tasks); err != nil {
		if errors.Is(err, device.ErrFailed) {
			// A survivor died with the replacement still stale: second failure.
			a.markDead()
			return fmt.Errorf("%w: survivor failed during rebuild: %v", ErrDoubleFailure, err)
		}
		return err
	}
	for _, b := range bufs {
		if b != nil {
			xorInto(unit, b)
		}
	}
	a.fault.Hit(PtRebuildBeforePut)
	if err := disks[f].Put(a.physAddr(f, s, 0), unit, diskservice.PutOptions{}); err != nil {
		if errors.Is(err, device.ErrFailed) {
			// The replacement itself died: drop back to plain degraded mode.
			a.noteFailure(f)
		}
		return err
	}
	a.fault.Hit(PtRebuildAfterPut)
	a.watermark.Store(int64(s + 1))
	a.met.Inc(metrics.ParityRebuildStripes)
	return nil
}

// RebuildProgress returns how many stripes are in sync on the replacement
// and the total. With no rebuild in flight it reports (total, total) when
// healthy and (0, total) when degraded without a replacement.
func (a *Array) RebuildProgress() (done, total int) {
	_, failed, rebuilding, w := a.snapshot()
	switch {
	case rebuilding:
		return w, a.stripes
	case failed < 0:
		return a.stripes, a.stripes
	default:
		return 0, a.stripes
	}
}

// CheckParity verifies the parity invariant — the XOR of every stripe's
// K+1 units is zero — reading each stripe under its stripe lock. It returns
// the stripes that violate the invariant. The array must be healthy.
func (a *Array) CheckParity() ([]int, error) {
	if err := a.alive(); err != nil {
		return nil, err
	}
	disks, failed, _, _ := a.snapshot()
	if failed >= 0 {
		return nil, ErrDegraded
	}
	var bad []int
	acc := make([]byte, a.unit*FragmentSize)
	for s := 0; s < a.stripes; s++ {
		lk := a.stripeLock(s)
		lk.Lock()
		for i := range acc {
			acc[i] = 0
		}
		var err error
		bufs := make([][]byte, a.n)
		var tasks []func() error
		for d := 0; d < a.n; d++ {
			d := d
			srv := disks[d]
			phys := a.physAddr(d, s, 0)
			tasks = append(tasks, func() error {
				b, e := srv.Get(phys, a.unit, diskservice.GetOptions{})
				bufs[d] = b
				return e
			})
		}
		err = a.fanout(tasks)
		lk.Unlock()
		if err != nil {
			return bad, err
		}
		for _, b := range bufs {
			xorInto(acc, b)
		}
		for _, x := range acc {
			if x != 0 {
				bad = append(bad, s)
				break
			}
		}
	}
	return bad, nil
}
