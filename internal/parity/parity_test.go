package parity

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/diskservice"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/stable"
)

// rig is a parity array over n freshly formatted disk services, with the
// underlying devices exposed for fault injection.
type rig struct {
	arr   *Array
	srvs  []*diskservice.Server
	disks []*device.Disk
	met   *metrics.Set
}

func newRig(t *testing.T, n int, opts ...func(*Config)) *rig {
	t.Helper()
	g := device.Geometry{FragmentsPerTrack: 8, Tracks: 32}
	met := metrics.NewSet()
	r := &rig{met: met}
	for i := 0; i < n; i++ {
		r.addDisk(t, g, i)
	}
	cfg := Config{ID: 100, Disks: r.srvs, Metrics: met}
	for _, o := range opts {
		o(&cfg)
	}
	arr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.arr = arr
	return r
}

// addDisk formats one more disk service and appends it to the rig (used for
// the initial members and for replacement disks).
func (r *rig) addDisk(t *testing.T, g device.Geometry, id int) *diskservice.Server {
	t.Helper()
	disk, err := device.New(g)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := device.New(g)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := device.New(g)
	if err != nil {
		t.Fatal(err)
	}
	st, err := stable.NewStore(sp, sm)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	srv, err := diskservice.Format(diskservice.Config{DiskID: id, Disk: disk, Stable: st})
	if err != nil {
		t.Fatal(err)
	}
	r.srvs = append(r.srvs, srv)
	r.disks = append(r.disks, disk)
	return srv
}

func pattern(frags int, seed int64) []byte {
	b := make([]byte, frags*FragmentSize)
	rnd := rand.New(rand.NewSource(seed))
	rnd.Read(b)
	return b
}

func mustGet(t *testing.T, a *Array, addr, n int) []byte {
	t.Helper()
	b, err := a.Get(addr, n, diskservice.GetOptions{})
	if err != nil {
		t.Fatalf("Get(%d,%d): %v", addr, n, err)
	}
	return b
}

func checkClean(t *testing.T, a *Array) {
	t.Helper()
	bad, err := a.CheckParity()
	if err != nil {
		t.Fatalf("CheckParity: %v", err)
	}
	if len(bad) != 0 {
		t.Fatalf("parity invariant violated on stripes %v", bad)
	}
}

func TestGeometry(t *testing.T) {
	r := newRig(t, 5)
	a := r.arr
	if a.DataDisks() != 4 || a.Disks() != 5 {
		t.Fatalf("got %d/%d disks", a.DataDisks(), a.Disks())
	}
	if got, want := a.StorageOverhead(), 1.25; got != want {
		t.Fatalf("overhead %v, want %v", got, want)
	}
	if a.Capacity() != a.Stripes()*a.DataDisks()*a.UnitFragments() {
		t.Fatalf("capacity %d inconsistent", a.Capacity())
	}
	// Every (stripe, unit) maps to a distinct disk, none the parity disk.
	for s := 0; s < 10; s++ {
		seen := map[int]bool{a.parityDisk(s): true}
		for j := 0; j < a.k; j++ {
			d := a.dataDisk(s, j)
			if seen[d] {
				t.Fatalf("stripe %d: disk %d used twice", s, d)
			}
			seen[d] = true
		}
	}
	if _, err := New(Config{Disks: r.srvs[:2]}); !errors.Is(err, ErrTooFewDisks) {
		t.Fatalf("2-disk array: %v", err)
	}
}

func TestRoundTripAndParityInvariant(t *testing.T) {
	r := newRig(t, 5)
	a := r.arr

	// Full-stripe aligned write (4 fragments = one stripe at unit 1).
	full := pattern(4*3, 1)
	if err := a.Put(0, full, diskservice.PutOptions{}); err != nil {
		t.Fatal(err)
	}
	// Unaligned partial writes exercising RMW across stripe boundaries.
	part := pattern(5, 2)
	if err := a.Put(17, part, diskservice.PutOptions{}); err != nil {
		t.Fatal(err)
	}
	single := pattern(1, 3)
	if err := a.Put(30, single, diskservice.PutOptions{}); err != nil {
		t.Fatal(err)
	}

	if got := mustGet(t, a, 0, 12); !bytes.Equal(got, full) {
		t.Fatal("full-stripe round trip mismatch")
	}
	if got := mustGet(t, a, 17, 5); !bytes.Equal(got, part) {
		t.Fatal("partial round trip mismatch")
	}
	if got := mustGet(t, a, 30, 1); !bytes.Equal(got, single) {
		t.Fatal("single-fragment round trip mismatch")
	}
	if r.met.Get(metrics.ParityFullStripeWrites) == 0 {
		t.Error("expected full-stripe writes")
	}
	if r.met.Get(metrics.ParityRMWWrites) == 0 {
		t.Error("expected RMW writes")
	}
	checkClean(t, a)
}

func TestLargerUnit(t *testing.T) {
	r := newRig(t, 4, func(c *Config) { c.UnitFragments = 4 })
	a := r.arr
	data := pattern(a.Capacity(), 4)
	if err := a.Put(0, data, diskservice.PutOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := mustGet(t, a, 0, a.Capacity()); !bytes.Equal(got, data) {
		t.Fatal("whole-array round trip mismatch")
	}
	checkClean(t, a)
}

func TestDegradedRead(t *testing.T) {
	for fail := 0; fail < 5; fail++ {
		r := newRig(t, 5)
		a := r.arr
		data := pattern(40, int64(fail))
		if err := a.Put(3, data, diskservice.PutOptions{}); err != nil {
			t.Fatal(err)
		}
		r.disks[fail].Fail()
		a.InvalidateCache() // force real reads, not track-cache hits
		if err := a.MarkFailed(fail); err != nil {
			t.Fatal(err)
		}
		got := mustGet(t, a, 3, 40)
		if !bytes.Equal(got, data) {
			t.Fatalf("degraded read with disk %d down: mismatch", fail)
		}
		if r.met.Get(metrics.ParityDegradedReads) == 0 {
			t.Errorf("disk %d: no degraded reads counted", fail)
		}
	}
}

func TestAutoFailureDetection(t *testing.T) {
	r := newRig(t, 5)
	a := r.arr
	data := pattern(40, 7)
	if err := a.Put(0, data, diskservice.PutOptions{}); err != nil {
		t.Fatal(err)
	}
	// Fail a disk without telling the array: the first read that trips over
	// ErrFailed must flip to degraded mode and retry via reconstruction.
	r.disks[2].Fail()
	a.InvalidateCache()
	got := mustGet(t, a, 0, 40)
	if !bytes.Equal(got, data) {
		t.Fatal("auto-detected degraded read mismatch")
	}
	if a.FailedDisk() != 2 {
		t.Fatalf("failed disk = %d, want 2", a.FailedDisk())
	}
}

func TestDegradedWrite(t *testing.T) {
	for fail := 0; fail < 5; fail++ {
		r := newRig(t, 5)
		a := r.arr
		base := pattern(60, int64(10+fail))
		if err := a.Put(0, base, diskservice.PutOptions{}); err != nil {
			t.Fatal(err)
		}
		r.disks[fail].Fail()
		a.InvalidateCache()
		if err := a.MarkFailed(fail); err != nil {
			t.Fatal(err)
		}
		// Overwrite a mix of full stripes and partial spans while degraded.
		over1 := pattern(8, int64(20+fail)) // stripes 0-1, full
		copy(base[0:], over1)
		if err := a.Put(0, over1, diskservice.PutOptions{}); err != nil {
			t.Fatalf("degraded full-stripe write, disk %d down: %v", fail, err)
		}
		over2 := pattern(5, int64(30+fail)) // partial, crosses stripes
		copy(base[22*FragmentSize:], over2)
		if err := a.Put(22, over2, diskservice.PutOptions{}); err != nil {
			t.Fatalf("degraded partial write, disk %d down: %v", fail, err)
		}
		if got := mustGet(t, a, 0, 60); !bytes.Equal(got, base) {
			t.Fatalf("degraded read-back after writes, disk %d down: mismatch", fail)
		}
		if r.met.Get(metrics.ParityDegradedWrites) == 0 {
			t.Errorf("disk %d: no degraded writes counted", fail)
		}

		// Replace and rebuild; everything must match byte for byte and the
		// parity invariant must hold on every stripe.
		repl := r.addDisk(t, device.Geometry{FragmentsPerTrack: 8, Tracks: 32}, 90+fail)
		if err := a.ReplaceDisk(fail, repl); err != nil {
			t.Fatal(err)
		}
		if err := a.Rebuild(); err != nil {
			t.Fatal(err)
		}
		if a.Degraded() {
			t.Fatal("still degraded after rebuild")
		}
		if got := mustGet(t, a, 0, 60); !bytes.Equal(got, base) {
			t.Fatalf("post-rebuild read-back, disk %d: mismatch", fail)
		}
		checkClean(t, a)
		if done, total := a.RebuildProgress(); done != total {
			t.Fatalf("rebuild progress %d/%d after completion", done, total)
		}
	}
}

func TestSecondFailureIsFatal(t *testing.T) {
	r := newRig(t, 5)
	a := r.arr
	data := pattern(8, 5)
	if err := a.Put(0, data, diskservice.PutOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := a.MarkFailed(1); err != nil {
		t.Fatal(err)
	}
	if err := a.MarkFailed(3); !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("second MarkFailed: %v", err)
	}
	r.disks[1].Fail()
	r.disks[3].Fail()
	a.InvalidateCache()
	if _, err := a.Get(0, 8, diskservice.GetOptions{}); err == nil {
		t.Fatal("read with two disks down unexpectedly succeeded")
	}
}

func TestStablePassThrough(t *testing.T) {
	r := newRig(t, 5)
	a := r.arr
	data := pattern(6, 9)
	opts := diskservice.PutOptions{Stability: diskservice.StableOnly, WaitStable: true}
	if err := a.Put(4, data, opts); err != nil {
		t.Fatal(err)
	}
	got, err := a.Get(4, 6, diskservice.GetOptions{FromStable: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("stable round trip mismatch")
	}
	// Stable writes must not disturb main storage's parity invariant.
	checkClean(t, a)

	// The stable copy survives a main-device failure.
	r.disks[2].Fail()
	a.InvalidateCache()
	if err := a.MarkFailed(2); err != nil {
		t.Fatal(err)
	}
	got, err = a.Get(4, 6, diskservice.GetOptions{FromStable: true})
	if err != nil {
		t.Fatalf("stable read with main device down: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("stable read after failure mismatch")
	}
}

// TestOnlineRebuild runs readers and writers concurrently with the rebuild
// and verifies the final image and parity invariant. Run with -race.
func TestOnlineRebuild(t *testing.T) {
	r := newRig(t, 5)
	a := r.arr
	size := a.Capacity()
	img := pattern(size, 42)
	if err := a.Put(0, img, diskservice.PutOptions{}); err != nil {
		t.Fatal(err)
	}
	r.disks[2].Fail()
	a.InvalidateCache()
	if err := a.MarkFailed(2); err != nil {
		t.Fatal(err)
	}
	repl := r.addDisk(t, device.Geometry{FragmentsPerTrack: 8, Tracks: 32}, 99)
	if err := a.ReplaceDisk(2, repl); err != nil {
		t.Fatal(err)
	}

	// Writers overwrite disjoint regions while the rebuild walks the array;
	// readers continuously verify a quiescent prefix written before the
	// failure.
	var mu sync.Mutex // serializes updates to the reference image
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			region := size / 4
			for i := 0; i < 6; i++ {
				addr := w*region + (i*7)%(region-9)
				chunk := pattern(9, int64(1000+w*100+i))
				if err := a.Put(addr, chunk, diskservice.PutOptions{}); err != nil {
					errc <- err
					return
				}
				mu.Lock()
				copy(img[addr*FragmentSize:], chunk)
				mu.Unlock()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			done, err := a.RebuildStep(4)
			if err != nil {
				errc <- err
				return
			}
			if done {
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if a.Degraded() {
		t.Fatal("array still degraded after online rebuild")
	}
	a.InvalidateCache()
	if got := mustGet(t, a, 0, size); !bytes.Equal(got, img) {
		t.Fatal("image mismatch after online rebuild")
	}
	checkClean(t, a)
	if r.met.Get(metrics.ParityRebuildStripes) != int64(a.Stripes()) {
		t.Fatalf("rebuilt %d stripes, want %d",
			r.met.Get(metrics.ParityRebuildStripes), a.Stripes())
	}
}

func TestAllocationSurface(t *testing.T) {
	r := newRig(t, 5)
	a := r.arr
	addr, err := a.AllocateFragments(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(addr, 10); err != nil {
		t.Fatal(err)
	}
	b, err := a.AllocateBlocks(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(b, 2*FragmentsPerBlock); err != nil {
		t.Fatal(err)
	}
	if err := a.AllocateAt(5, 3); err != nil {
		t.Fatal(err)
	}
	if a.FreeFragments() != a.Capacity()-3 {
		t.Fatalf("free %d, want %d", a.FreeFragments(), a.Capacity()-3)
	}
	if err := a.ResetBitmap(); err != nil {
		t.Fatal(err)
	}
	if a.FreeFragments() != a.Capacity() {
		t.Fatal("ResetBitmap did not free everything")
	}
}

// TestSecondFailureDuringRebuild injects a delay into the rebuild's stripe
// writes, then fails a second distinct disk while the rebuild is in flight:
// the rebuild must stop with ErrDoubleFailure, concurrent readers must get
// clean errors (never stale or reconstructed-from-garbage data), and every
// later operation must refuse with the same distinct error. Run with -race.
func TestSecondFailureDuringRebuild(t *testing.T) {
	inj := fault.NewInjector(31)
	r := newRig(t, 3, func(c *Config) { c.Fault = inj })
	a := r.arr
	size := a.Capacity()
	img := pattern(size, 77)
	if err := a.Put(0, img, diskservice.PutOptions{}); err != nil {
		t.Fatal(err)
	}
	r.disks[1].Fail()
	a.InvalidateCache()
	if err := a.MarkFailed(1); err != nil {
		t.Fatal(err)
	}
	repl := r.addDisk(t, device.Geometry{FragmentsPerTrack: 8, Tracks: 32}, 99)
	if err := a.ReplaceDisk(1, repl); err != nil {
		t.Fatal(err)
	}

	// Slow every stripe resync so the second failure lands mid-rebuild.
	inj.Arm(PtRebuildBeforePut, fault.Action{Kind: fault.KindDelay, Delay: 2 * time.Millisecond, Times: -1})
	rebuildErr := make(chan error, 1)
	go func() { rebuildErr <- a.Rebuild() }()
	for {
		done, total := a.RebuildProgress()
		if done > 0 && done < total {
			break
		}
		if done >= total {
			t.Fatal("rebuild finished before the second failure could land")
		}
		time.Sleep(time.Millisecond)
	}

	// Concurrent readers race the failure; each read must either succeed
	// with correct bytes or fail cleanly.
	var wg sync.WaitGroup
	readErrs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				got, err := a.Get(0, 4, diskservice.GetOptions{})
				if err != nil {
					if !errors.Is(err, ErrDoubleFailure) && !errors.Is(err, ErrTooManyFailures) {
						readErrs <- err
					}
					return
				}
				if !bytes.Equal(got, img[:4*FragmentSize]) {
					readErrs <- errors.New("read returned wrong bytes during double failure")
					return
				}
			}
		}()
	}

	if err := a.MarkFailed(2); !errors.Is(err, ErrDoubleFailure) {
		t.Fatalf("second MarkFailed = %v, want ErrDoubleFailure", err)
	}
	err := <-rebuildErr
	if !errors.Is(err, ErrDoubleFailure) {
		t.Fatalf("in-flight Rebuild = %v, want ErrDoubleFailure", err)
	}
	// The distinct error still matches the generic two-failure sentinel, so
	// existing callers keep recognizing it.
	if !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("ErrDoubleFailure must wrap ErrTooManyFailures; got %v", err)
	}
	wg.Wait()
	close(readErrs)
	for err := range readErrs {
		t.Fatal(err)
	}

	// The array is lost: reads, writes, parity checks, and rebuild restarts
	// all refuse with the double-failure error instead of serving garbage.
	if _, err := a.Get(0, 1, diskservice.GetOptions{}); !errors.Is(err, ErrDoubleFailure) {
		t.Fatalf("Get after double failure = %v", err)
	}
	if err := a.Put(0, pattern(1, 1), diskservice.PutOptions{}); !errors.Is(err, ErrDoubleFailure) {
		t.Fatalf("Put after double failure = %v", err)
	}
	if _, err := a.CheckParity(); !errors.Is(err, ErrDoubleFailure) {
		t.Fatalf("CheckParity after double failure = %v", err)
	}
	if _, err := a.RebuildStep(1); !errors.Is(err, ErrDoubleFailure) {
		t.Fatalf("RebuildStep after double failure = %v", err)
	}
	if err := a.ReplaceDisk(1, repl); !errors.Is(err, ErrDoubleFailure) {
		t.Fatalf("ReplaceDisk after double failure = %v", err)
	}
}
