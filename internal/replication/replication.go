// Package replication implements the replication service of the RHODOS
// architecture (Fig. 1): file replication across file services, satisfying
// the reliability goal that the design "must have the provision to support
// the concept of file replication" (§2.1).
//
// The scheme is primary-copy with synchronous write-all / read-one: a
// replicated file has one physical file per replica file service; writes go
// to every healthy replica, reads are served by the first healthy one.
// A replica that misses writes while failed is marked stale per file and is
// brought back with Repair, which resynchronizes stale files from a healthy
// copy.
package replication

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/fileservice"
	"repro/internal/fit"
	"repro/internal/obs"
)

// RepID identifies a replicated file.
type RepID uint64

// Errors.
var (
	ErrNotFound    = errors.New("replication: no such replicated file")
	ErrNoReplicas  = errors.New("replication: no healthy replica")
	ErrBadReplica  = errors.New("replication: bad replica index")
	ErrAllReplicas = errors.New("replication: all replicas failed")
)

// rfile is one replicated file: a physical file per replica.
type rfile struct {
	ids   []fileservice.FileID
	stale []bool // per replica: missed one or more writes
}

// Manager is the replication service over a fixed set of replica file
// services. It is safe for concurrent use.
type Manager struct {
	replicas []*fileservice.Service
	obsRec   *obs.Recorder

	mu     sync.Mutex
	failed []bool
	files  map[RepID]*rfile
	nextID RepID
}

// SetRecorder installs the observability recorder; replicated reads and
// writes are observed as replication-layer operations. Call before use.
func (m *Manager) SetRecorder(r *obs.Recorder) { m.obsRec = r }

// NewManager creates a replication manager; at least one replica is
// required.
func NewManager(replicas []*fileservice.Service) (*Manager, error) {
	if len(replicas) == 0 {
		return nil, errors.New("replication: no replicas")
	}
	return &Manager{
		replicas: replicas,
		failed:   make([]bool, len(replicas)),
		files:    make(map[RepID]*rfile),
	}, nil
}

// Replicas returns the number of replica services.
func (m *Manager) Replicas() int { return len(m.replicas) }

// Create makes a replicated file on every replica.
func (m *Manager) Create(attr fit.Attributes) (RepID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rf := &rfile{stale: make([]bool, len(m.replicas))}
	for i, fs := range m.replicas {
		id, err := fs.Create(attr)
		if err != nil {
			// Roll back the partial create.
			for j, created := range rf.ids {
				_ = m.replicas[j].Delete(created)
			}
			return 0, fmt.Errorf("replication: create on replica %d: %w", i, err)
		}
		rf.ids = append(rf.ids, id)
	}
	m.nextID++
	m.files[m.nextID] = rf
	return m.nextID, nil
}

// WriteAt writes to every healthy replica (write-all). Failed replicas are
// skipped and marked stale for this file; the write succeeds as long as at
// least one replica accepts it.
func (m *Manager) WriteAt(id RepID, off int64, data []byte) (int, error) {
	_, op := m.obsRec.StartOp(context.Background(), obs.LayerReplication, "writeAt")
	op.Span().AddBytes(len(data))
	n, err := m.writeAt(id, off, data)
	op.End(err)
	return n, err
}

func (m *Manager) writeAt(id RepID, off int64, data []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rf, ok := m.files[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	wrote := -1
	for i, fs := range m.replicas {
		if m.failed[i] {
			rf.stale[i] = true
			continue
		}
		n, err := fs.WriteAt(rf.ids[i], off, data)
		if err != nil {
			// The replica failed mid-write: mark it down and stale.
			m.failed[i] = true
			rf.stale[i] = true
			continue
		}
		wrote = n
	}
	if wrote < 0 {
		return 0, ErrAllReplicas
	}
	return wrote, nil
}

// ReadAt reads from the first healthy, non-stale replica (read-one),
// failing over when a replica errors mid-read.
func (m *Manager) ReadAt(id RepID, off int64, n int) ([]byte, error) {
	_, op := m.obsRec.StartOp(context.Background(), obs.LayerReplication, "readAt")
	data, err := m.readAt(id, off, n)
	op.Span().AddBytes(len(data))
	op.End(err)
	return data, err
}

func (m *Manager) readAt(id RepID, off int64, n int) ([]byte, error) {
	m.mu.Lock()
	rf, ok := m.files[id]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	type candidate struct {
		idx int
		fid fileservice.FileID
	}
	var cands []candidate
	for i := range m.replicas {
		if !m.failed[i] && !rf.stale[i] {
			cands = append(cands, candidate{i, rf.ids[i]})
		}
	}
	m.mu.Unlock()
	var lastErr error
	for _, c := range cands {
		data, err := m.replicas[c.idx].ReadAt(c.fid, off, n)
		if err == nil {
			return data, nil
		}
		lastErr = err
		m.mu.Lock()
		m.failed[c.idx] = true
		m.mu.Unlock()
	}
	if lastErr != nil {
		return nil, fmt.Errorf("%w: last error: %v", ErrNoReplicas, lastErr)
	}
	return nil, ErrNoReplicas
}

// Size returns the replicated file's size from a healthy replica.
func (m *Manager) Size(id RepID) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rf, ok := m.files[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	for i, fs := range m.replicas {
		if m.failed[i] || rf.stale[i] {
			continue
		}
		return fs.Size(rf.ids[i])
	}
	return 0, ErrNoReplicas
}

// Delete removes the file from every healthy replica.
func (m *Manager) Delete(id RepID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rf, ok := m.files[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	var firstErr error
	for i, fs := range m.replicas {
		if m.failed[i] {
			continue
		}
		if err := fs.Delete(rf.ids[i]); err != nil && firstErr == nil &&
			!errors.Is(err, fileservice.ErrNotFound) {
			firstErr = err
		}
	}
	delete(m.files, id)
	return firstErr
}

// MarkFailed declares a replica down (e.g. its machine crashed). Subsequent
// writes skip it and mark touched files stale.
func (m *Manager) MarkFailed(i int) error {
	if i < 0 || i >= len(m.replicas) {
		return ErrBadReplica
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failed[i] = true
	return nil
}

// Repair brings a replica back: every file stale on it is resynchronized
// from a healthy copy, then the replica rejoins.
func (m *Manager) Repair(i int) error {
	if i < 0 || i >= len(m.replicas) {
		return ErrBadReplica
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, rf := range m.files {
		if !rf.stale[i] {
			continue
		}
		if err := m.resyncLocked(rf, i); err != nil {
			return fmt.Errorf("replication: resyncing file %d: %w", id, err)
		}
		rf.stale[i] = false
	}
	m.failed[i] = false
	return nil
}

// resyncLocked copies a file's content from the first healthy fresh replica
// to replica dst.
func (m *Manager) resyncLocked(rf *rfile, dst int) error {
	src := -1
	for j := range m.replicas {
		if j != dst && !m.failed[j] && !rf.stale[j] {
			src = j
			break
		}
	}
	if src < 0 {
		return ErrNoReplicas
	}
	size, err := m.replicas[src].Size(rf.ids[src])
	if err != nil {
		return err
	}
	if err := m.replicas[dst].Truncate(rf.ids[dst], 0); err != nil {
		return err
	}
	const chunk = 64 * 1024
	for off := int64(0); off < size; off += chunk {
		data, err := m.replicas[src].ReadAt(rf.ids[src], off, chunk)
		if err != nil {
			return err
		}
		if len(data) == 0 {
			break
		}
		if _, err := m.replicas[dst].WriteAt(rf.ids[dst], off, data); err != nil {
			return err
		}
	}
	return nil
}

// Health returns the per-replica failed flags (a copy).
func (m *Manager) Health() []bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]bool, len(m.failed))
	copy(out, m.failed)
	return out
}

// StaleCount returns how many (file, replica) pairs are stale (diagnostic).
func (m *Manager) StaleCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, rf := range m.files {
		for _, s := range rf.stale {
			if s {
				n++
			}
		}
	}
	return n
}

// ReplicaFileID exposes the physical file behind one replica (diagnostics
// and tests).
func (m *Manager) ReplicaFileID(id RepID, replica int) (fileservice.FileID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rf, ok := m.files[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	if replica < 0 || replica >= len(rf.ids) {
		return 0, ErrBadReplica
	}
	return rf.ids[replica], nil
}
