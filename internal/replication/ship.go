// Log shipping: the network half of primary/backup shard replication.
//
// The cluster layer replicates a shard not by copying disk blocks but by
// shipping the stream of committed mutations — rpcfs-level operation records
// — to a backup that re-executes them against its own file service. The
// stream is sequenced and gapless, so the backup's state is a deterministic
// replay of the primary's; each record also carries the originating client's
// identity and the primary's reply, which the backup uses to seed its
// duplicate-request cache so a client retry that lands after a failover
// still gets the exactly-once answer.
//
// Shipper runs on the primary: mutations append records, a single sender
// goroutine batches and ships them, and Wait blocks a committing batch until
// its records are confirmed by the backup (the group-commit barrier). A ship
// failure marks the stream down — the primary then serves solo rather than
// stall (availability over replication; the cluster layer drops the backup
// from the map). Applier runs on the backup: it checks sequencing and CRC,
// re-executes each record, and verifies the replay produced the primary's
// reply.
package replication

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"repro/internal/obs"
)

// Named metrics this package records (on the recorder passed in via
// ShipperConfig.Obs / Applier.Obs). Values are unit-less counts for the
// batch histograms and nanoseconds for the latency ones.
const (
	MetricShipBatchRecords = "repl.ship.batch_records"
	MetricShipBatchBytes   = "repl.ship.batch_bytes"
	MetricShipNS           = "repl.ship.ns"
	MetricApplyNS          = "repl.apply.ns"
)

// Rec is one shipped mutation record.
type Rec struct {
	Seq    uint64 // position in the shard's replication stream (1-based)
	Client uint64 // originating rpc client (0: no duplicate-cache seeding)
	CSeq   uint64 // the client's request sequence number
	Method string // rpcfs method name
	Body   []byte // request body, in the shard's wire codec
	Reply  []byte // the primary's reply body (replay must reproduce it)

	// TraceID and SpanID carry the group-commit span that appended the
	// record, in memory only (never encoded into the batch frame): the
	// sender uses the first traced record to parent its ship span, which
	// then rides the rpc frame header to the backup.
	TraceID uint64
	SpanID  uint64
}

// ErrShipDown marks the replication stream as broken: the backup is
// unreachable or has diverged, and no further records will be confirmed.
var ErrShipDown = errors.New("replication: ship stream down")

// --- batch codec ---
//
// A batch frame is
//
//	count  u32
//	recs   count × [seq u64, client u64, cseq u64, mlen u16, blen u32,
//	                rlen u32, method, body, reply]
//	crc    u32 (IEEE, over everything before it)
//
// The CRC guards against a corrupt or truncated frame replaying garbage
// into the backup's state machine.

// appendBatch encodes recs onto dst.
func appendBatch(dst []byte, recs []Rec) []byte {
	start := len(dst)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(recs)))
	for i := range recs {
		r := &recs[i]
		dst = binary.BigEndian.AppendUint64(dst, r.Seq)
		dst = binary.BigEndian.AppendUint64(dst, r.Client)
		dst = binary.BigEndian.AppendUint64(dst, r.CSeq)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Method)))
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Body)))
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Reply)))
		dst = append(dst, r.Method...)
		dst = append(dst, r.Body...)
		dst = append(dst, r.Reply...)
	}
	return binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// decodeBatch decodes a batch frame. The returned records alias data.
func decodeBatch(data []byte) ([]Rec, error) {
	if len(data) < 8 {
		return nil, errors.New("replication: short batch frame")
	}
	payload, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(trailer) {
		return nil, errors.New("replication: batch CRC mismatch")
	}
	count := binary.BigEndian.Uint32(payload)
	off := 4
	recs := make([]Rec, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(payload)-off < 34 {
			return nil, errors.New("replication: truncated batch record")
		}
		var r Rec
		r.Seq = binary.BigEndian.Uint64(payload[off:])
		r.Client = binary.BigEndian.Uint64(payload[off+8:])
		r.CSeq = binary.BigEndian.Uint64(payload[off+16:])
		mlen := int(binary.BigEndian.Uint16(payload[off+24:]))
		blen := int(binary.BigEndian.Uint32(payload[off+26:]))
		rlen := int(binary.BigEndian.Uint32(payload[off+30:]))
		off += 34
		if len(payload)-off < mlen+blen+rlen {
			return nil, errors.New("replication: truncated batch record")
		}
		r.Method = string(payload[off : off+mlen])
		off += mlen
		r.Body = payload[off : off+blen : off+blen]
		off += blen
		r.Reply = payload[off : off+rlen : off+rlen]
		off += rlen
		recs = append(recs, r)
	}
	if off != len(payload) {
		return nil, errors.New("replication: trailing bytes in batch frame")
	}
	return recs, nil
}

// ShipperConfig configures a Shipper.
type ShipperConfig struct {
	// Send ships one encoded batch frame and returns once the backup has
	// confirmed applying it (typically one rpc round trip). An error marks
	// the stream down. ctx carries the sender's ship span so a tracing
	// transport can propagate it to the backup.
	Send func(ctx context.Context, batch []byte) error
	// OnDown, when set, runs once (from the sender goroutine or MarkDown's
	// caller) when the stream goes down, with the cause.
	OnDown func(err error)
	// Obs, when set, records a ship span and the batch-size/latency
	// histograms per shipped batch.
	Obs *obs.Recorder
}

// Shipper sequences and ships mutation records to one backup. Appenders and
// the single sender goroutine rendezvous on a queue: Append assigns the next
// sequence number and enqueues; the sender drains whatever has accumulated,
// ships it as one batch, and advances the confirmed watermark. Wait blocks
// until a record is confirmed or the stream is down — the commit barrier.
type Shipper struct {
	send   func(context.Context, []byte) error
	onDown func(error)
	rec    *obs.Recorder

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []Rec
	nextSeq   uint64 // last assigned sequence number
	confirmed uint64 // highest backup-confirmed sequence number
	inflight  uint64 // highest seq in the batch the sender holds right now
	down      bool
	downErr   error
	closed    bool

	wg sync.WaitGroup
}

// NewShipper starts a shipper and its sender goroutine.
func NewShipper(cfg ShipperConfig) *Shipper {
	s := &Shipper{send: cfg.Send, onDown: cfg.OnDown, rec: cfg.Obs}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(1)
	go s.sender()
	return s
}

// Append assigns the next stream sequence number to r, queues it for
// shipping, and returns the assigned number. ok is false when the stream is
// down or closed — the record is not queued and the caller proceeds solo.
// The record's byte slices are retained until the batch containing them has
// been shipped; callers must not recycle them before Wait returns.
func (s *Shipper) Append(r Rec) (seq uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down || s.closed {
		return 0, false
	}
	s.nextSeq++
	r.Seq = s.nextSeq
	s.queue = append(s.queue, r)
	s.cond.Broadcast()
	return r.Seq, true
}

// Wait blocks until seq is confirmed by the backup (true) or the stream
// goes down or closes first (false). A false return also guarantees the
// sender no longer holds the record — its byte slices are the caller's
// again — so a record in the batch being encoded when the stream went down
// is waited out rather than released early.
func (s *Shipper) Wait(seq uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.confirmed < seq && !((s.down || s.closed) && seq > s.inflight) {
		s.cond.Wait()
	}
	return s.confirmed >= seq
}

// Flush waits until every appended record is confirmed, or the stream is
// down or closed (false).
func (s *Shipper) Flush() bool {
	s.mu.Lock()
	seq := s.nextSeq
	s.mu.Unlock()
	if seq == 0 {
		return !s.Down()
	}
	return s.Wait(seq)
}

// Down reports whether the stream is down.
func (s *Shipper) Down() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.down
}

// MarkDown forces the stream down with cause (heartbeat failure path);
// waiters unblock with false and OnDown fires once.
func (s *Shipper) MarkDown(cause error) { s.setDown(cause) }

func (s *Shipper) setDown(cause error) {
	s.mu.Lock()
	if s.down || s.closed {
		s.mu.Unlock()
		return
	}
	s.down = true
	s.downErr = cause
	s.queue = nil
	s.cond.Broadcast()
	onDown := s.onDown
	s.mu.Unlock()
	if onDown != nil {
		onDown(cause)
	}
}

// Close stops the sender. Unconfirmed records are abandoned (waiters get
// false); OnDown does not fire.
func (s *Shipper) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.queue = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// sender drains the queue, shipping each accumulated run as one batch. Under
// group-commit-style load many appends pile up behind one in-flight ship, so
// batching amortizes the backup round trip the same way the txn layer
// amortizes the disk sync.
func (s *Shipper) sender() {
	defer s.wg.Done()
	var frame []byte
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed && !s.down {
			s.cond.Wait()
		}
		if s.closed || s.down {
			s.mu.Unlock()
			return
		}
		batch := s.queue
		s.queue = nil
		s.inflight = batch[len(batch)-1].Seq
		s.mu.Unlock()

		frame = appendBatch(frame[:0], batch)
		// The ship span continues the group-commit span of the first traced
		// record in the batch (later records in the same batch share the
		// ride but not the span), and the Send context carries it across
		// the wire to the backup.
		ctx := context.Background()
		var op obs.Op
		var tid, sid uint64
		for i := range batch {
			if batch[i].TraceID != 0 {
				tid, sid = batch[i].TraceID, batch[i].SpanID
				break
			}
		}
		ctx, op = s.rec.StartRemoteOp(ctx, obs.LayerReplication, "ship", tid, sid)
		op.Span().SetCount(len(batch))
		op.Span().AddBytes(len(frame))
		t0 := time.Now()
		err := s.send(ctx, frame)
		op.End(err)
		s.rec.ValueHist(MetricShipBatchRecords).Record(time.Duration(len(batch)))
		s.rec.ValueHist(MetricShipBatchBytes).Record(time.Duration(len(frame)))
		s.rec.ValueHist(MetricShipNS).Record(time.Since(t0))
		s.mu.Lock()
		s.inflight = 0
		if err == nil {
			s.confirmed = batch[len(batch)-1].Seq
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		if err != nil {
			s.setDown(fmt.Errorf("%w: %v", ErrShipDown, err))
			return
		}
	}
}

// Applier is the backup's replay half: it validates and re-executes shipped
// batches in stream order.
type Applier struct {
	// Apply re-executes one record against the backup's state machine and
	// returns the reply it produced.
	Apply func(method string, body []byte) ([]byte, error)
	// ApplyCtx, when set, is used instead of Apply and receives the batch
	// context, which carries the backup-apply span — so the backup's own
	// fileservice/txn/wal spans nest inside the shipped trace.
	ApplyCtx func(ctx context.Context, method string, body []byte) ([]byte, error)
	// Seed, when set, records (client, cseq) → reply in the backup's
	// duplicate-request cache, so a client retry after failover is answered
	// without re-execution. reply is owned by the callee.
	Seed func(client, cseq uint64, reply []byte)
	// Obs, when set, records a backup-apply span and per-record apply
	// latency.
	Obs *obs.Recorder

	mu      sync.Mutex
	applied uint64 // highest applied sequence number
}

// Applied returns the highest applied sequence number.
func (a *Applier) Applied() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.applied
}

// ApplyBatch decodes and replays one batch frame. Records at or below the
// applied watermark are skipped (a resent batch is harmless); a gap or a
// replay that produces a different reply than the primary's is divergence
// and fails the batch — the stream cannot safely continue. Returns the new
// applied watermark.
func (a *Applier) ApplyBatch(data []byte) (uint64, error) {
	return a.ApplyBatchCtx(context.Background(), data)
}

// ApplyBatchCtx is ApplyBatch with the receiving rpc's context threaded
// through: each record replays under a backup-apply span nested in ctx's
// tree (the primary's ship span, when the batch arrived traced).
func (a *Applier) ApplyBatchCtx(ctx context.Context, data []byte) (uint64, error) {
	recs, err := decodeBatch(data)
	if err != nil {
		return a.Applied(), err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range recs {
		r := &recs[i]
		if r.Seq <= a.applied {
			continue
		}
		if r.Seq != a.applied+1 {
			return a.applied, fmt.Errorf("replication: sequence gap: have %d, got %d", a.applied, r.Seq)
		}
		// Only successful mutations are shipped, so a replay that errors —
		// or answers differently — means the replicas have diverged.
		t0 := time.Now()
		rctx, op := a.Obs.StartOp(ctx, obs.LayerReplication, "backup-apply")
		var out []byte
		var aerr error
		if a.ApplyCtx != nil {
			out, aerr = a.ApplyCtx(rctx, r.Method, r.Body)
		} else {
			out, aerr = a.Apply(r.Method, r.Body)
		}
		op.End(aerr)
		a.Obs.ValueHist(MetricApplyNS).Record(time.Since(t0))
		if aerr != nil {
			return a.applied, fmt.Errorf("replication: divergence at seq %d (%s): replay failed: %v", r.Seq, r.Method, aerr)
		}
		if !bytes.Equal(out, r.Reply) {
			return a.applied, fmt.Errorf("replication: divergence at seq %d (%s): replay reply differs", r.Seq, r.Method)
		}
		if a.Seed != nil && r.Client != 0 {
			a.Seed(r.Client, r.CSeq, out)
		}
		a.applied = r.Seq
	}
	return a.applied, nil
}
