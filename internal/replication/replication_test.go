package replication

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"repro/internal/device"
	"repro/internal/diskservice"
	"repro/internal/fileservice"
	"repro/internal/fit"
	"repro/internal/stable"
)

// rig holds n replica file services, each on its own disk, with access to
// the underlying devices for failure injection.
type rig struct {
	mgr  *Manager
	svcs []*fileservice.Service
	devs []*device.Disk
}

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	r := &rig{}
	g := device.Geometry{FragmentsPerTrack: 32, Tracks: 64}
	for i := 0; i < n; i++ {
		d, err := device.New(g)
		if err != nil {
			t.Fatal(err)
		}
		sp, _ := device.New(g)
		sm, _ := device.New(g)
		st, err := stable.NewStore(sp, sm)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = st.Close() })
		srv, err := diskservice.Format(diskservice.Config{DiskID: i, Disk: d, Stable: st})
		if err != nil {
			t.Fatal(err)
		}
		fs, err := fileservice.New(fileservice.Config{Disks: fileservice.Servers(srv)})
		if err != nil {
			t.Fatal(err)
		}
		r.svcs = append(r.svcs, fs)
		r.devs = append(r.devs, d)
	}
	mgr, err := NewManager(r.svcs)
	if err != nil {
		t.Fatal(err)
	}
	r.mgr = mgr
	return r
}

func TestCreateWritesAllReplicas(t *testing.T) {
	r := newRig(t, 3)
	id, err := r.mgr.Create(fit.Attributes{})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("replicated payload")
	if _, err := r.mgr.WriteAt(id, 0, want); err != nil {
		t.Fatal(err)
	}
	// Every replica holds the data, verified directly.
	for i, fs := range r.svcs {
		fid, err := r.mgr.ReplicaFileID(id, i)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fs.ReadAt(fid, 0, len(want))
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("replica %d content = %q, %v", i, got, err)
		}
	}
}

func TestReadFailsOverOnReplicaFailure(t *testing.T) {
	r := newRig(t, 3)
	id, err := r.mgr.Create(fit.Attributes{})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("survives failure")
	if _, err := r.mgr.WriteAt(id, 0, want); err != nil {
		t.Fatal(err)
	}
	// Kill replica 0's disk; a read must fail over transparently.
	r.svcs[0].InvalidateCaches()
	r.devs[0].Fail()
	got, err := r.mgr.ReadAt(id, 0, len(want))
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("failover read = %q, %v", got, err)
	}
	health := r.mgr.Health()
	if !health[0] || health[1] || health[2] {
		t.Fatalf("health after failover = %v, want [true false false]", health)
	}
}

func TestWriteSkipsFailedReplicaAndRepairResyncs(t *testing.T) {
	r := newRig(t, 2)
	id, err := r.mgr.Create(fit.Attributes{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.mgr.WriteAt(id, 0, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.MarkFailed(1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.mgr.WriteAt(id, 0, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if r.mgr.StaleCount() != 1 {
		t.Fatalf("StaleCount = %d, want 1", r.mgr.StaleCount())
	}
	// Replica 1 still has v1 physically.
	fid1, _ := r.mgr.ReplicaFileID(id, 1)
	got, err := r.svcs[1].ReadAt(fid1, 0, 2)
	if err != nil || string(got) != "v1" {
		t.Fatalf("stale replica content = %q, %v", got, err)
	}
	// Repair resynchronizes.
	if err := r.mgr.Repair(1); err != nil {
		t.Fatal(err)
	}
	if r.mgr.StaleCount() != 0 {
		t.Fatalf("StaleCount after repair = %d", r.mgr.StaleCount())
	}
	got, err = r.svcs[1].ReadAt(fid1, 0, 2)
	if err != nil || string(got) != "v2" {
		t.Fatalf("repaired replica content = %q, %v", got, err)
	}
	health := r.mgr.Health()
	if health[1] {
		t.Fatal("replica 1 still failed after repair")
	}
}

func TestStaleReplicaNotReadFrom(t *testing.T) {
	r := newRig(t, 2)
	id, err := r.mgr.Create(fit.Attributes{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.mgr.WriteAt(id, 0, []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.MarkFailed(0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.mgr.WriteAt(id, 0, []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	// Replica 0 comes back without repair: it is still stale and must not
	// serve reads.
	r.mgr.mu.Lock()
	r.mgr.failed[0] = false
	r.mgr.mu.Unlock()
	got, err := r.mgr.ReadAt(id, 0, 4)
	if err != nil || string(got) != "bbbb" {
		t.Fatalf("read served stale data: %q, %v", got, err)
	}
}

func TestAllReplicasFailed(t *testing.T) {
	r := newRig(t, 2)
	id, err := r.mgr.Create(fit.Attributes{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.mgr.WriteAt(id, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.MarkFailed(0); err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.MarkFailed(1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.mgr.WriteAt(id, 0, []byte("y")); !errors.Is(err, ErrAllReplicas) {
		t.Fatalf("write with all failed = %v", err)
	}
	if _, err := r.mgr.ReadAt(id, 0, 1); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("read with all failed = %v", err)
	}
}

func TestDeleteRemovesReplicas(t *testing.T) {
	r := newRig(t, 2)
	id, err := r.mgr.Create(fit.Attributes{})
	if err != nil {
		t.Fatal(err)
	}
	fid0, _ := r.mgr.ReplicaFileID(id, 0)
	if _, err := r.mgr.WriteAt(id, 0, []byte("z")); err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := r.svcs[0].Attributes(fid0); !errors.Is(err, fileservice.ErrNotFound) {
		t.Fatalf("replica file survives delete: %v", err)
	}
	if _, err := r.mgr.ReadAt(id, 0, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read of deleted = %v", err)
	}
}

func TestSizeAndLargeResync(t *testing.T) {
	r := newRig(t, 2)
	id, err := r.mgr.Create(fit.Attributes{})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("0123456789abcdef"), 10000) // 160 KB
	if _, err := r.mgr.WriteAt(id, 0, payload); err != nil {
		t.Fatal(err)
	}
	if size, err := r.mgr.Size(id); err != nil || size != int64(len(payload)) {
		t.Fatalf("Size = %d, %v", size, err)
	}
	if err := r.mgr.MarkFailed(1); err != nil {
		t.Fatal(err)
	}
	update := bytes.Repeat([]byte("NEW!"), 25000) // 100 KB overwrite
	if _, err := r.mgr.WriteAt(id, 0, update); err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.Repair(1); err != nil {
		t.Fatal(err)
	}
	fid1, _ := r.mgr.ReplicaFileID(id, 1)
	got, err := r.svcs[1].ReadAt(fid1, 0, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte{}, update...), payload[len(update):]...)
	if !bytes.Equal(got, want) {
		t.Fatal("large resync produced wrong content")
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewManager(nil); err == nil {
		t.Fatal("NewManager(nil) succeeded")
	}
	r := newRig(t, 1)
	if err := r.mgr.MarkFailed(5); !errors.Is(err, ErrBadReplica) {
		t.Fatalf("MarkFailed(5) = %v", err)
	}
	if err := r.mgr.Repair(-1); !errors.Is(err, ErrBadReplica) {
		t.Fatalf("Repair(-1) = %v", err)
	}
	if _, err := r.mgr.WriteAt(99, 0, []byte("x")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("write unknown = %v", err)
	}
}

// TestRepairConcurrentWithWrites hammers Repair against concurrent WriteAt
// on the same files: the stale flag must never be cleared while an in-flight
// write is bypassing the repaired replica, or a replica would be marked
// clean with the write missing. After every round, each replica must hold
// exactly the reference data. Meant to run under -race.
func TestRepairConcurrentWithWrites(t *testing.T) {
	r := newRig(t, 3)
	const files = 4
	ids := make([]RepID, files)
	ref := make([][]byte, files)
	for i := range ids {
		id, err := r.mgr.Create(fit.Attributes{})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		ref[i] = bytes.Repeat([]byte{byte(i + 1)}, 4096)
		if _, err := r.mgr.WriteAt(id, 0, ref[i]); err != nil {
			t.Fatal(err)
		}
	}
	var refMu sync.Mutex
	for round := 0; round < 5; round++ {
		// Take replica 1 down and dirty every file so repair has real work.
		r.svcs[1].InvalidateCaches()
		r.devs[1].Fail()
		if err := r.mgr.MarkFailed(1); err != nil {
			t.Fatal(err)
		}
		for i, id := range ids {
			refMu.Lock()
			ref[i] = bytes.Repeat([]byte{byte(round*16 + i)}, 4096)
			chunk := append([]byte(nil), ref[i]...)
			refMu.Unlock()
			if _, err := r.mgr.WriteAt(id, 0, chunk); err != nil {
				t.Fatal(err)
			}
		}
		r.devs[1].Repair()

		// Repair races with writers updating the same files.
		var wg sync.WaitGroup
		errc := make(chan error, files+1)
		for w := 0; w < files; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 8; i++ {
					data := bytes.Repeat([]byte{byte(round*16 + w + i)}, 4096)
					refMu.Lock()
					copy(ref[w], data) // Manager.WriteAt serializes per manager
					_, err := r.mgr.WriteAt(ids[w], 0, data)
					refMu.Unlock()
					if err != nil {
						errc <- err
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := r.mgr.Repair(1); err != nil {
				errc <- err
			}
		}()
		wg.Wait()
		close(errc)
		for err := range errc {
			t.Fatal(err)
		}
		if n := r.mgr.StaleCount(); n != 0 {
			t.Fatalf("round %d: %d stale pairs after repair + writes", round, n)
		}
		// Every replica of every file must hold the last written data.
		for w := range ids {
			refMu.Lock()
			want := append([]byte(nil), ref[w]...)
			refMu.Unlock()
			for rep := 0; rep < r.mgr.Replicas(); rep++ {
				fid, err := r.mgr.ReplicaFileID(ids[w], rep)
				if err != nil {
					t.Fatal(err)
				}
				got, err := r.svcs[rep].ReadAt(fid, 0, len(want))
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("round %d: replica %d of file %d diverged (err %v)", round, rep, w, err)
				}
			}
		}
	}
}
