package replication

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"testing"
	"time"
)

func sampleRecs() []Rec {
	return []Rec{
		{Client: 7, CSeq: 101, Method: "fs.create", Body: []byte("body-one"), Reply: []byte("reply-one")},
		{Client: 0, CSeq: 0, Method: "fs.writeAt", Body: bytes.Repeat([]byte{0xAB}, 300), Reply: []byte{1}},
		{Client: 9, CSeq: 5, Method: "fs.truncate", Body: nil, Reply: nil},
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	recs := sampleRecs()
	for i := range recs {
		recs[i].Seq = uint64(i + 1)
	}
	frame := appendBatch(nil, recs)
	got, err := decodeBatch(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		w, g := recs[i], got[i]
		if g.Seq != w.Seq || g.Client != w.Client || g.CSeq != w.CSeq || g.Method != w.Method ||
			!bytes.Equal(g.Body, w.Body) || !bytes.Equal(g.Reply, w.Reply) {
			t.Fatalf("record %d: got %+v, want %+v", i, g, w)
		}
	}

	// An empty batch still frames and round-trips (count 0 + CRC).
	empty, err := decodeBatch(appendBatch(nil, nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty batch: %d records, %v", len(empty), err)
	}
}

func TestBatchCodecRejectsCorruption(t *testing.T) {
	frame := appendBatch(nil, sampleRecs())

	// Flip one payload byte: the CRC must catch it.
	bad := append([]byte(nil), frame...)
	bad[5] ^= 0xFF
	if _, err := decodeBatch(bad); err == nil {
		t.Fatal("corrupt frame decoded")
	}

	// Truncations at every length must error, never panic or misdecode.
	for n := 0; n < len(frame); n++ {
		if _, err := decodeBatch(frame[:n]); err == nil {
			t.Fatalf("truncated frame (%d of %d bytes) decoded", n, len(frame))
		}
	}

	// Trailing garbage after the declared records fails even with a valid CRC
	// over the whole thing.
	extra := appendBatch(nil, sampleRecs()[:1])
	payload := append(append([]byte(nil), extra[:len(extra)-4]...), 0xDE, 0xAD)
	rebuilt := binary.BigEndian.AppendUint32(payload, crc32.ChecksumIEEE(payload))
	if _, err := decodeBatch(rebuilt); err == nil {
		t.Fatal("frame with trailing bytes decoded")
	}
}

func TestShipperConfirmsInOrder(t *testing.T) {
	var mu sync.Mutex
	var shipped []Rec
	s := NewShipper(ShipperConfig{Send: func(_ context.Context, batch []byte) error {
		recs, err := decodeBatch(batch)
		if err != nil {
			return err
		}
		mu.Lock()
		for _, r := range recs {
			shipped = append(shipped, Rec{Seq: r.Seq, Method: r.Method, Body: append([]byte(nil), r.Body...)})
		}
		mu.Unlock()
		return nil
	}})
	defer s.Close()

	const N = 50
	var wg sync.WaitGroup
	fails := make(chan string, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seq, ok := s.Append(Rec{Method: "m", Body: []byte{byte(i)}})
			if !ok {
				fails <- fmt.Sprintf("append %d refused", i)
				return
			}
			if !s.Wait(seq) {
				fails <- fmt.Sprintf("wait %d returned false", seq)
			}
		}(i)
	}
	wg.Wait()
	close(fails)
	for f := range fails {
		t.Error(f)
	}
	if !s.Flush() {
		t.Fatal("Flush returned false on a healthy stream")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(shipped) != N {
		t.Fatalf("shipped %d records, want %d", len(shipped), N)
	}
	// The stream must be gapless and in order regardless of batching.
	for i, r := range shipped {
		if r.Seq != uint64(i+1) {
			t.Fatalf("shipped seq %d at position %d", r.Seq, i)
		}
	}
}

func TestShipperSendFailureMarksDown(t *testing.T) {
	cause := errors.New("backup unreachable")
	var downs []error
	var mu sync.Mutex
	s := NewShipper(ShipperConfig{
		Send:   func(context.Context, []byte) error { return cause },
		OnDown: func(err error) { mu.Lock(); downs = append(downs, err); mu.Unlock() },
	})
	defer s.Close()

	seq, ok := s.Append(Rec{Method: "m"})
	if !ok {
		t.Fatal("append refused on a fresh stream")
	}
	if s.Wait(seq) {
		t.Fatal("Wait confirmed a record the backup never acked")
	}
	if !s.Down() {
		t.Fatal("stream not marked down after send failure")
	}
	// Post-down appends are refused: the caller proceeds solo.
	if _, ok := s.Append(Rec{Method: "m2"}); ok {
		t.Fatal("append accepted on a down stream")
	}
	if s.Flush() {
		t.Fatal("Flush succeeded on a down stream")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(downs) != 1 || !errors.Is(downs[0], ErrShipDown) {
		t.Fatalf("OnDown fired %d times with %v; want once with ErrShipDown", len(downs), downs)
	}
}

// TestShipperMarkDownWaitsOutInflight pins the body-lifetime guarantee: a
// Wait that returns false must mean the sender no longer holds the record,
// even when MarkDown lands while that record's batch is on the wire.
func TestShipperMarkDownWaitsOutInflight(t *testing.T) {
	sendEntered := make(chan struct{})
	sendRelease := make(chan struct{})
	s := NewShipper(ShipperConfig{Send: func(context.Context, []byte) error {
		close(sendEntered)
		<-sendRelease
		return errors.New("severed mid-flight")
	}})
	defer s.Close()

	seq, ok := s.Append(Rec{Method: "m", Body: []byte("held")})
	if !ok {
		t.Fatal("append refused")
	}
	<-sendEntered // the sender holds the record on the encoder now

	waitDone := make(chan bool, 1)
	go func() { waitDone <- s.Wait(seq) }()

	s.MarkDown(errors.New("heartbeat failed"))
	select {
	case <-waitDone:
		t.Fatal("Wait returned while the sender still held the record")
	case <-time.After(50 * time.Millisecond):
	}

	close(sendRelease)
	select {
	case ok := <-waitDone:
		if ok {
			t.Fatal("Wait confirmed a record on a down stream")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait never unblocked after the sender released the record")
	}
}

func TestApplierReplaysAndSeeds(t *testing.T) {
	var applied []string
	type seeded struct{ client, cseq uint64 }
	var seeds []seeded
	a := &Applier{
		Apply: func(method string, body []byte) ([]byte, error) {
			applied = append(applied, method)
			return []byte("ok:" + method), nil
		},
		Seed: func(client, cseq uint64, reply []byte) {
			seeds = append(seeds, seeded{client, cseq})
		},
	}
	batch := appendBatch(nil, []Rec{
		{Seq: 1, Client: 7, CSeq: 100, Method: "a", Reply: []byte("ok:a")},
		{Seq: 2, Client: 0, CSeq: 0, Method: "b", Reply: []byte("ok:b")},
	})
	if w, err := a.ApplyBatch(batch); err != nil || w != 2 {
		t.Fatalf("ApplyBatch = %d, %v", w, err)
	}
	if len(applied) != 2 || applied[0] != "a" || applied[1] != "b" {
		t.Fatalf("applied %v", applied)
	}
	// Client 0 records must not seed the duplicate cache.
	if len(seeds) != 1 || seeds[0] != (seeded{7, 100}) {
		t.Fatalf("seeded %v, want [{7 100}]", seeds)
	}

	// A resent batch is skipped idempotently.
	if w, err := a.ApplyBatch(batch); err != nil || w != 2 {
		t.Fatalf("resent ApplyBatch = %d, %v", w, err)
	}
	if len(applied) != 2 {
		t.Fatalf("resend re-executed: applied %v", applied)
	}

	// A sequence gap is divergence territory: fail, don't apply.
	gap := appendBatch(nil, []Rec{{Seq: 4, Method: "d", Reply: []byte("ok:d")}})
	if _, err := a.ApplyBatch(gap); err == nil {
		t.Fatal("sequence gap applied")
	}
	if a.Applied() != 2 {
		t.Fatalf("watermark moved across a gap: %d", a.Applied())
	}
}

func TestApplierDetectsDivergence(t *testing.T) {
	newApplier := func(applyErr error, reply string) *Applier {
		return &Applier{Apply: func(string, []byte) ([]byte, error) {
			return []byte(reply), applyErr
		}}
	}
	batch := appendBatch(nil, []Rec{{Seq: 1, Method: "m", Reply: []byte("primary-said")}})

	// Replay produced a different reply than the primary recorded.
	a := newApplier(nil, "backup-said")
	if _, err := a.ApplyBatch(batch); err == nil {
		t.Fatal("reply mismatch applied")
	}
	if a.Applied() != 0 {
		t.Fatalf("watermark advanced past divergence: %d", a.Applied())
	}

	// Replay errored where the primary succeeded (only successful mutations
	// are shipped).
	a = newApplier(errors.New("no such file"), "")
	if _, err := a.ApplyBatch(batch); err == nil {
		t.Fatal("failed replay applied")
	}
}
