package txn

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/fit"
)

func TestNestedCommitMergesIntoParent(t *testing.T) {
	r := newRig(t)
	id, fid := r.beginWithFile(fit.LockPage)
	if _, err := r.svc.PWrite(id, fid, 0, []byte("parent-data")); err != nil {
		t.Fatal(err)
	}
	child, err := r.svc.BeginChild(id)
	if err != nil {
		t.Fatal(err)
	}
	if !r.svc.IsChild(child) {
		t.Fatal("IsChild = false")
	}
	// The child sees the parent's tentative data.
	got, err := r.svc.PRead(child, fid, 0, 11, false)
	if err != nil || string(got) != "parent-data" {
		t.Fatalf("child view = %q, %v", got, err)
	}
	// The child writes; the parent does not see it until child commit... in
	// this simplified model the parent sees it only after the merge.
	if _, err := r.svc.PWrite(child, fid, 0, []byte("CHILD")); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(child); err != nil {
		t.Fatal(err)
	}
	// Parent now sees the child's write.
	got, err = r.svc.PRead(id, fid, 0, 11, false)
	if err != nil || string(got) != "CHILD-data?"[:11] && string(got) != "CHILD-data " {
		// Child wrote 5 bytes over "parent-data": "CHILDt-data"? No:
		// "CHILD" over "parent-data" -> "CHILDt-data"... verify explicitly.
		if !bytes.Equal(got, []byte("CHILDt-data")) {
			t.Fatalf("parent view after child commit = %q, %v", got, err)
		}
	}
	// Nothing is committed yet.
	base, err := r.fs.ReadAt(fid, 0, 11)
	if err != nil || len(base) != 0 {
		t.Fatalf("data visible before top-level commit: %q, %v", base, err)
	}
	if err := r.svc.End(id); err != nil {
		t.Fatal(err)
	}
	base, err = r.fs.ReadAt(fid, 0, 11)
	if err != nil || !bytes.Equal(base, []byte("CHILDt-data")) {
		t.Fatalf("committed data = %q, %v", base, err)
	}
}

func TestNestedAbortDiscardsOnlyChildWork(t *testing.T) {
	r := newRig(t)
	id, fid := r.beginWithFile(fit.LockPage)
	if _, err := r.svc.PWrite(id, fid, 0, []byte("keepme")); err != nil {
		t.Fatal(err)
	}
	child, err := r.svc.BeginChild(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.svc.PWrite(child, fid, 0, []byte("DISCARD")); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.Abort(child); err != nil {
		t.Fatal(err)
	}
	// The parent's view is intact.
	got, err := r.svc.PRead(id, fid, 0, 6, false)
	if err != nil || string(got) != "keepme" {
		t.Fatalf("parent view after child abort = %q, %v", got, err)
	}
	if err := r.svc.End(id); err != nil {
		t.Fatal(err)
	}
	base, err := r.fs.ReadAt(fid, 0, 6)
	if err != nil || string(base) != "keepme" {
		t.Fatalf("committed = %q, %v", base, err)
	}
}

func TestNestedChildCreatesFile(t *testing.T) {
	r := newRig(t)
	id, err := r.svc.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	child, err := r.svc.BeginChild(id)
	if err != nil {
		t.Fatal(err)
	}
	fid, err := r.svc.Create(child, fit.Attributes{Locking: fit.LockPage})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.svc.PWrite(child, fid, 0, []byte("from child")); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(child); err != nil {
		t.Fatal(err)
	}
	// The parent inherited the created file and can keep writing it.
	if _, err := r.svc.PWrite(id, fid, 10, []byte(" and parent")); err != nil {
		t.Fatalf("parent write to child-created file: %v", err)
	}
	if err := r.svc.End(id); err != nil {
		t.Fatal(err)
	}
	got, err := r.fs.ReadAt(fid, 0, 21)
	if err != nil || string(got) != "from child and parent" {
		t.Fatalf("committed = %q, %v", got, err)
	}
}

func TestNestedChildCreateAbortRemovesFile(t *testing.T) {
	r := newRig(t)
	id, err := r.svc.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	child, err := r.svc.BeginChild(id)
	if err != nil {
		t.Fatal(err)
	}
	fid, err := r.svc.Create(child, fit.Attributes{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.svc.Abort(child); err != nil {
		t.Fatal(err)
	}
	if _, err := r.fs.Attributes(fid); err == nil {
		t.Fatal("child-created file survives child abort")
	}
	if err := r.svc.End(id); err != nil {
		t.Fatal(err)
	}
}

func TestParentEndBlockedByLiveChild(t *testing.T) {
	r := newRig(t)
	id, _ := r.beginWithFile(fit.LockPage)
	child, err := r.svc.BeginChild(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(id); !errors.Is(err, ErrLiveChildren) {
		t.Fatalf("parent End with live child = %v, want ErrLiveChildren", err)
	}
	if err := r.svc.End(child); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(id); err != nil {
		t.Fatalf("parent End after child: %v", err)
	}
}

func TestParentAbortCascadesToChildren(t *testing.T) {
	r := newRig(t)
	id, fid := r.beginWithFile(fit.LockPage)
	child, err := r.svc.BeginChild(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.svc.PWrite(child, fid, 0, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.Abort(id); err != nil {
		t.Fatal(err)
	}
	// The child is gone too.
	if _, err := r.svc.PRead(child, fid, 0, 1, false); !errors.Is(err, ErrNoTxn) && !errors.Is(err, ErrAborted) {
		t.Fatalf("child op after parent abort = %v", err)
	}
	// The parent-created file was removed.
	if _, err := r.fs.Attributes(fid); err == nil {
		t.Fatal("file survives cascaded abort")
	}
}

func TestNestedLocksSharedWithFamily(t *testing.T) {
	r := newRig(t)
	id, fid := r.beginWithFile(fit.LockPage)
	if _, err := r.svc.PWrite(id, fid, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(id); err != nil {
		t.Fatal(err)
	}
	// Parent write-locks page 0; its child can write the same page without
	// deadlocking against the parent.
	p, err := r.svc.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.svc.Open(p, fid, fit.LockPage); err != nil {
		t.Fatal(err)
	}
	if _, err := r.svc.PWrite(p, fid, 0, []byte("parent")); err != nil {
		t.Fatal(err)
	}
	child, err := r.svc.BeginChild(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.svc.PWrite(child, fid, 0, []byte("CHILD!")); err != nil {
		t.Fatalf("child blocked by its own family's lock: %v", err)
	}
	if err := r.svc.End(child); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(p); err != nil {
		t.Fatal(err)
	}
	got, err := r.fs.ReadAt(fid, 0, 6)
	if err != nil || string(got) != "CHILD!" {
		t.Fatalf("committed = %q, %v", got, err)
	}
}

func TestGrandchildren(t *testing.T) {
	r := newRig(t)
	id, fid := r.beginWithFile(fit.LockPage)
	if _, err := r.svc.PWrite(id, fid, 0, []byte("AAAA")); err != nil {
		t.Fatal(err)
	}
	c1, err := r.svc.BeginChild(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.svc.PWrite(c1, fid, 1, []byte("BB")); err != nil {
		t.Fatal(err)
	}
	c2, err := r.svc.BeginChild(c1)
	if err != nil {
		t.Fatal(err)
	}
	// The grandchild sees both ancestors' overlays.
	got, err := r.svc.PRead(c2, fid, 0, 4, false)
	if err != nil || string(got) != "ABBA" {
		t.Fatalf("grandchild view = %q, %v", got, err)
	}
	if _, err := r.svc.PWrite(c2, fid, 3, []byte("Z")); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(c2); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(c1); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(id); err != nil {
		t.Fatal(err)
	}
	base, err := r.fs.ReadAt(fid, 0, 4)
	if err != nil || string(base) != "ABBZ" {
		t.Fatalf("committed = %q, %v", base, err)
	}
}
