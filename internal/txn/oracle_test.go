package txn

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fit"
)

// TestQuickTxnOracle drives random serial transactions (including
// subtransactions and aborts) against a byte-slice model: a transaction's
// writes apply to the model only when the whole chain up to the top level
// commits; reads inside a transaction must see the model plus the pending
// family's writes.
func TestQuickTxnOracle(t *testing.T) {
	levels := []fit.LockLevel{fit.LockRecord, fit.LockPage, fit.LockFile}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := newRig(t)
		level := levels[rng.Intn(len(levels))]
		const fileSize = 40000

		// Committed model and setup.
		committed := make([]byte, fileSize)
		rng.Read(committed)
		setup, err := r.svc.Begin(0)
		if err != nil {
			return false
		}
		fid, err := r.svc.Create(setup, fit.Attributes{Locking: level})
		if err != nil {
			return false
		}
		if _, err := r.svc.PWrite(setup, fid, 0, committed); err != nil {
			return false
		}
		if err := r.svc.End(setup); err != nil {
			return false
		}

		for round := 0; round < 12; round++ {
			// One transaction, possibly with a subtransaction.
			top, err := r.svc.Begin(1)
			if err != nil {
				t.Logf("begin: %v", err)
				return false
			}
			if err := r.svc.Open(top, fid, level); err != nil {
				t.Logf("open: %v", err)
				return false
			}
			pending := append([]byte(nil), committed...)
			cur := top
			var childPending []byte
			inChild := false
			for op := 0; op < 6; op++ {
				switch rng.Intn(6) {
				case 0: // maybe enter a subtransaction
					if !inChild {
						child, err := r.svc.BeginChild(top)
						if err != nil {
							t.Logf("beginChild: %v", err)
							return false
						}
						cur = child
						childPending = append([]byte(nil), pending...)
						inChild = true
					}
				case 1: // maybe finish the subtransaction
					if inChild {
						if rng.Intn(2) == 0 {
							if err := r.svc.End(cur); err != nil {
								t.Logf("endChild: %v", err)
								return false
							}
							pending = childPending
						} else {
							if err := r.svc.Abort(cur); err != nil {
								t.Logf("abortChild: %v", err)
								return false
							}
						}
						cur = top
						inChild = false
					}
				case 2, 3: // write
					off := rng.Intn(fileSize - 200)
					n := 1 + rng.Intn(200)
					buf := make([]byte, n)
					rng.Read(buf)
					if _, err := r.svc.PWrite(cur, fid, int64(off), buf); err != nil {
						t.Logf("pwrite: %v", err)
						return false
					}
					if inChild {
						copy(childPending[off:], buf)
					} else {
						copy(pending[off:], buf)
					}
				default: // read & compare against the current view
					off := rng.Intn(fileSize - 300)
					n := 1 + rng.Intn(300)
					got, err := r.svc.PRead(cur, fid, int64(off), n, rng.Intn(2) == 0)
					if err != nil {
						t.Logf("pread: %v", err)
						return false
					}
					want := pending
					if inChild {
						want = childPending
					}
					if !bytes.Equal(got, want[off:off+n]) {
						t.Logf("seed %d round %d: view mismatch at %d+%d", seed, round, off, n)
						return false
					}
				}
			}
			if inChild {
				if err := r.svc.End(cur); err != nil {
					t.Logf("endChild tail: %v", err)
					return false
				}
				pending = childPending
			}
			// Commit or abort the top level.
			if rng.Intn(3) == 0 {
				if err := r.svc.Abort(top); err != nil {
					t.Logf("abort: %v", err)
					return false
				}
			} else {
				if err := r.svc.End(top); err != nil {
					t.Logf("end: %v", err)
					return false
				}
				committed = pending
			}
			// Committed state must match the model.
			got, err := r.fs.ReadAt(fid, 0, fileSize)
			if err != nil || !bytes.Equal(got, committed) {
				t.Logf("seed %d round %d: committed state mismatch (%v)", seed, round, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}
