package txn

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/simclock"
	"repro/internal/wal"
)

// Fault points at the group-commit batch boundaries. before-sync is the last
// instant at which every member of the batch can still vanish without trace
// (their records are appended but not durable); leader-synced dies after the
// leader's Sync succeeded but before any follower is woken — every member's
// commit record is durable, yet no member has been told, so recovery must
// find the whole batch fully durable while the members themselves saw only
// ErrCommitInterrupted.
var (
	PtGroupBeforeSync   = fault.Register("txn.group.before-sync")
	PtGroupLeaderSynced = fault.Register("txn.group.leader-synced")
)

// ErrCommitInterrupted reports that the commit's group-commit batch leader
// crashed while this transaction was parked on the batch. The outcome is
// uncertain until recovery: the commit record may or may not have reached
// stable storage, so the transaction is either fully durable or fully
// invisible after Recover, never half-applied. The service holds the
// transaction's locks and log records until recovery resolves it.
var ErrCommitInterrupted = errors.New("txn: commit interrupted: batch leader crashed")

// GroupCommitConfig tunes the group-commit pipeline. The zero value enables
// group commit with a batch cap of 64 and no extra linger, which is correct
// for every workload; the knobs exist for experiments.
type GroupCommitConfig struct {
	// Disable reverts to one wal.Sync per commit (the E19 baseline). Commits
	// then serialize through the log exactly as the pre-group-commit service
	// did.
	Disable bool
	// MaxBatch caps how many commits one leader syncs together (default 64).
	MaxBatch int
	// MaxDelay is the leader's linger window: a leader whose batch is below
	// MaxBatch waits up to MaxDelay for more committers before syncing.
	// Zero means no linger — batching then comes only from commits that
	// arrive while the previous batch's sync is in flight.
	MaxDelay time.Duration
	// Clock, when set, makes the MaxDelay window virtual-time aware: the
	// leader charges the window to the clock and proceeds without a wall
	// wait, so virtual-time runs stay deterministic. Leave nil for wall
	// runs.
	Clock simclock.Clock
	// Barrier, when set, runs after each successful batch Sync and before
	// any member of the batch is acknowledged — the hook shard replication
	// uses to hold commit acks until the backup confirms the batch's
	// mutations. It is called outside the pipeline lock, once per batch. A
	// Barrier error does NOT drop the batch's records (they are durable;
	// only the acknowledgement is in doubt), so it surfaces to every member
	// as ErrCommitInterrupted: locks and records are held until Recover,
	// exactly like a leader crash after the sync.
	Barrier func() error
}

// ChainBarriers composes several commit-barrier hooks into one Barrier
// function: each runs in order, and the first error stops the chain and is
// returned. Nil entries are skipped, so callers can chain optional hooks
// without guarding. The order is load-bearing — the client-cache write-back
// barrier must run before the replication barrier, so dirty blocks flushed
// by the cache land in the same replicated batch whose acknowledgement the
// replication hook is holding back.
func ChainBarriers(fns ...func() error) func() error {
	return func() error {
		for _, fn := range fns {
			if fn == nil {
				continue
			}
			if err := fn(); err != nil {
				return err
			}
		}
		return nil
	}
}

// gcBatch is one commit batch: the transactions whose log records share a
// single stable-storage barrier.
type gcBatch struct {
	size int
	// epoch is g.dropEpoch at creation. If it advances before this batch's
	// leader issues its Sync, a failed sync ahead of the batch already
	// discarded its members' records via DropUnsynced, and the batch must
	// fail instead of syncing a log that no longer holds them.
	epoch  uint64
	closed bool          // no longer accepting members; err is settled
	err    error         // nil: every member's records are durable
	done   chan struct{} // closed when err is settled
}

// groupCommit coordinates batched commit-record syncs. Concurrent End
// callers append their records under mu, join the current batch, and park;
// the first member of a batch is its leader and issues one wal.Sync for
// everyone. Appends may proceed while a sync is in flight (the next batch
// accumulates behind the barrier), which is where the amortization comes
// from: N concurrent commits cost ~1 barrier instead of N.
//
// Lock ordering: mu is acquired before the log's internal mutex (via
// Append/Sync/Rollback) and never the other way around. The leader drops mu
// across the Sync itself.
type groupCommit struct {
	s        *Service
	disabled bool
	maxBatch int
	maxDelay time.Duration
	clock    simclock.Clock
	barrier  func() error

	mu   sync.Mutex
	idle *sync.Cond // broadcast whenever cur/syncing/unapplied/resetting change
	// cur is the open batch accepting members, nil when none is open.
	cur *gcBatch
	// syncing is true while some leader's wal.Sync is in flight. At most one
	// sync runs at a time; on a sync failure everything unsynced belongs to
	// batches whose members all receive the failure.
	syncing bool
	// unapplied counts transactions whose records are in the log but whose
	// intentions are not yet applied in place (from batch join until
	// applied/aborted). The log must not be truncated while it is nonzero —
	// the window the maybeTruncateLog regression test pins.
	unapplied int
	// resetting is true while a log truncation (checkpoint or log-full
	// reset) is in progress; appends wait it out.
	resetting bool
	// dropEpoch counts DropUnsynced calls. A failed sync drops *every*
	// unsynced record, and more than one batch can sit behind the in-flight
	// barrier (a filled batch plus the open cur), so poisoning cur alone is
	// not enough: every batch snapshots the epoch at creation and its leader
	// re-checks it after the in-flight-sync wait, failing the batch if the
	// epoch advanced underneath it.
	dropEpoch uint64
	// dropErr is the sync failure behind the latest dropEpoch bump.
	dropErr error
}

func newGroupCommit(s *Service, cfg GroupCommitConfig) *groupCommit {
	g := &groupCommit{
		s:        s,
		disabled: cfg.Disable,
		maxBatch: cfg.MaxBatch,
		maxDelay: cfg.MaxDelay,
		clock:    cfg.Clock,
		barrier:  cfg.Barrier,
	}
	if g.maxBatch <= 0 {
		g.maxBatch = 64
	}
	g.idle = sync.NewCond(&g.mu)
	return g
}

// reset clears the volatile pipeline state. Recover calls it on a freshly
// mounted (or crash-abandoned) service: any batch in flight at the crash is
// resolved by the log replay, so the accounting restarts from zero.
func (g *groupCommit) reset() {
	g.mu.Lock()
	g.cur = nil
	g.syncing = false
	g.unapplied = 0
	g.resetting = false
	g.idle.Broadcast()
	g.mu.Unlock()
}

// applied retires one transaction from the unapplied count after its
// intentions reached their in-place homes (or its records were dropped with
// the failed sync that carried them).
func (g *groupCommit) applied() {
	g.mu.Lock()
	g.unapplied--
	g.idle.Broadcast()
	g.mu.Unlock()
}

// commit makes t's commit records durable: it appends them to the log and
// returns once they are covered by a stable-storage barrier. Under group
// commit the barrier is shared with every transaction in the same batch;
// with Disable set each commit pays its own.
//
// On nil return the caller owes one applied() call after applying the
// intentions. On ErrCommitInterrupted the outcome is unknown and the
// unapplied count stays elevated (blocking truncation) until Recover. On
// any other error the records are already backed out or dropped.
func (g *groupCommit) commit(ctx context.Context, t *txnState) error {
	if g.disabled {
		return g.commitSolo(t)
	}
	g.mu.Lock()
	for g.resetting {
		g.idle.Wait()
	}
	if err := g.appendLocked(t); err != nil {
		g.mu.Unlock()
		return err
	}
	b := g.cur
	leader := false
	if b == nil || b.closed || b.size >= g.maxBatch {
		b = &gcBatch{done: make(chan struct{}), epoch: g.dropEpoch}
		g.cur = b
		leader = true
	}
	b.size++
	g.unapplied++
	g.idle.Broadcast() // a lingering leader re-checks its batch size
	g.mu.Unlock()

	var err error
	if leader {
		err = g.lead(ctx, b)
	} else {
		g.s.met.Inc(metrics.TxnGroupWaits)
		<-b.done
		err = b.err
	}
	if err != nil && !errors.Is(err, ErrCommitInterrupted) {
		g.applied() // records dropped with the failed sync; nothing to apply
	}
	return err
}

// lead runs the leader side of one batch: linger for joiners, wait out the
// previous sync, close the batch, issue the shared Sync, and wake everyone.
func (g *groupCommit) lead(ctx context.Context, b *gcBatch) error {
	g.mu.Lock()
	// The previous batch's sync pipelines with this batch's formation: every
	// commit arriving while it runs joins b here.
	for g.syncing && !b.closed {
		g.idle.Wait()
	}
	if b.closed {
		// A failed sync poisoned the batch while we waited.
		g.mu.Unlock()
		return b.err
	}
	if b.epoch != g.dropEpoch {
		// A sync ahead of this batch failed while we waited: its
		// DropUnsynced discarded this batch's records along with the failed
		// batch's, so there is nothing left to harden — syncing now would
		// acknowledge every member with no durable commit record. Fail them
		// all instead.
		err := fmt.Errorf("txn: group sync failed ahead of this batch: %w", g.dropErr)
		if g.cur == b {
			g.cur = nil
		}
		b.closed = true
		b.err = err
		close(b.done)
		g.mu.Unlock()
		return err
	}
	g.linger(b)
	if g.cur == b {
		g.cur = nil // later arrivals start the next batch
	}
	g.syncing = true
	size := b.size
	g.mu.Unlock()

	completed := false
	defer func() {
		if completed {
			return
		}
		// A fault-injected crash is unwinding through the leader. Poison the
		// batch so parked followers return instead of waiting on a dead
		// machine; their outcome is uncertain until recovery, so unapplied
		// stays elevated and the log keeps their records.
		g.mu.Lock()
		g.syncing = false
		g.idle.Broadcast()
		g.mu.Unlock()
		b.closed = true
		b.err = ErrCommitInterrupted
		close(b.done)
	}()

	_, sp := obs.StartSpan(ctx, obs.LayerTxn, "group-sync")
	sp.SetCount(size) // the batch size, for the trace
	g.s.fault.Hit(PtGroupBeforeSync)
	err := g.s.log.Sync()
	syncFailed := err != nil
	if err == nil {
		g.s.fault.Hit(PtGroupLeaderSynced)
		if g.barrier != nil {
			if berr := g.barrier(); berr != nil {
				// The records ARE durable — only the barrier (replication)
				// failed — so this must not drop them below: members get the
				// leader-crashed treatment and recovery resolves them.
				err = fmt.Errorf("%w: replication barrier: %v", ErrCommitInterrupted, berr)
			}
		}
	}
	sp.End(err)

	g.mu.Lock()
	g.syncing = false
	if syncFailed {
		// Nothing synced: the watermarks are untouched (wal.Sync is
		// failure-atomic), so everything unsynced belongs to this batch and
		// any batch formed behind it — possibly several (a filled batch plus
		// the open cur). Drop it all and advance the epoch so the leaders of
		// those batches fail them when they wake (the epoch re-check above);
		// the open batch is also poisoned directly so post-drop arrivals
		// start a clean one.
		g.s.log.DropUnsynced()
		g.dropEpoch++
		g.dropErr = err
		if nxt := g.cur; nxt != nil {
			g.cur = nil
			nxt.closed = true
			nxt.err = fmt.Errorf("txn: group sync failed ahead of this batch: %w", err)
			close(nxt.done)
		}
	}
	g.idle.Broadcast()
	g.mu.Unlock()

	if err == nil {
		g.s.met.Inc(metrics.TxnGroupBatches)
		g.s.obsRec.ValueHist("txn.group.batch_size").Record(time.Duration(size))
	}
	completed = true
	b.closed = true
	b.err = err
	close(b.done)
	return err
}

// linger holds the batch open for up to MaxDelay while it is below
// MaxBatch, giving concurrent committers time to join. Under a virtual
// clock the window is charged to the clock instead of slept.
func (g *groupCommit) linger(b *gcBatch) {
	if g.maxDelay <= 0 || b.size >= g.maxBatch {
		return
	}
	if g.clock != nil {
		g.clock.Advance(g.maxDelay)
		return
	}
	deadline := time.Now().Add(g.maxDelay)
	timer := time.AfterFunc(g.maxDelay, func() {
		g.mu.Lock()
		g.idle.Broadcast()
		g.mu.Unlock()
	})
	defer timer.Stop()
	for b.size < g.maxBatch && !b.closed && time.Now().Before(deadline) {
		g.idle.Wait()
	}
}

// commitSolo is the ungrouped baseline: append and sync serialize per
// commit, so N concurrent commits pay N barriers. The unapplied accounting
// (and with it the truncation guard) is identical to the grouped path.
func (g *groupCommit) commitSolo(t *txnState) error {
	g.mu.Lock()
	for g.resetting || g.syncing {
		g.idle.Wait()
	}
	if err := g.appendLocked(t); err != nil {
		g.mu.Unlock()
		return err
	}
	g.unapplied++
	g.syncing = true
	g.mu.Unlock()

	g.s.fault.Hit(PtGroupBeforeSync)
	err := g.s.log.Sync()
	syncFailed := err != nil
	if err == nil {
		g.s.fault.Hit(PtGroupLeaderSynced)
		if g.barrier != nil {
			if berr := g.barrier(); berr != nil {
				// Durable but unacknowledgeable, as in lead: leave the records
				// (and the unapplied count) for recovery.
				err = fmt.Errorf("%w: replication barrier: %v", ErrCommitInterrupted, berr)
			}
		}
	}

	g.mu.Lock()
	g.syncing = false
	if syncFailed {
		// Only this commit's records are unsynced: appends waited out the
		// sync, so nothing else is in the volatile window. (No batches exist
		// in solo mode, but every DropUnsynced still bumps the epoch.)
		g.s.log.DropUnsynced()
		g.dropEpoch++
		g.dropErr = err
		g.unapplied--
	}
	g.idle.Broadcast()
	g.mu.Unlock()
	return err
}

// appendLocked writes t's commit records into the log under g.mu, handling
// a full log by backing its own partial tail out, draining the pipeline,
// checkpointing, and retrying once.
func (g *groupCommit) appendLocked(t *txnState) error {
	for attempt := 0; ; attempt++ {
		mark := g.s.log.Mark()
		err := g.s.writeCommitRecords(t)
		if err == nil {
			return nil
		}
		// Back out this transaction's partial tail. Appends serialize under
		// g.mu, so the tail is ours alone; the rollback can only fail if a
		// concurrent sync already hardened part of it, in which case the
		// orphaned records are inert (no commit record follows them).
		_ = g.s.log.Rollback(mark)
		if !errors.Is(err, wal.ErrLogFull) || attempt > 0 {
			return err
		}
		// The log is full: wait for every batched and unapplied record to
		// reach its in-place home, then checkpoint and retry. resetting
		// parks later appenders so the drain terminates.
		g.resetting = true
		for g.cur != nil || g.syncing || g.unapplied > 0 {
			g.idle.Wait()
		}
		ferr := g.s.fs.Flush()
		if ferr == nil {
			ferr = g.s.log.Reset()
		}
		g.resetting = false
		g.idle.Broadcast()
		if ferr != nil {
			return ferr
		}
	}
}

// beginTruncation enters the log-truncation critical section if the
// pipeline is quiescent: no open batch, no sync in flight, and no
// committed-but-unapplied records. On true the caller owes endTruncation.
func (g *groupCommit) beginTruncation() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cur != nil || g.syncing || g.unapplied > 0 || g.resetting {
		return false
	}
	g.resetting = true
	return true
}

func (g *groupCommit) endTruncation() {
	g.mu.Lock()
	g.resetting = false
	g.idle.Broadcast()
	g.mu.Unlock()
}
