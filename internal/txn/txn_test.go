package txn

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/diskservice"
	"repro/internal/fault"
	"repro/internal/fileservice"
	"repro/internal/fit"
	"repro/internal/intentions"
	"repro/internal/metrics"
	"repro/internal/stable"
	"repro/internal/wal"
)

// rig is a full substrate: devices, disk server, file service, WAL, txn
// service — rebuildable to simulate a machine crash.
type rig struct {
	t        *testing.T
	met      *metrics.Set
	inj      *fault.Injector
	dev      *device.Disk
	stDev    [2]*device.Disk
	logDev   [2]*device.Disk
	st       *stable.Store
	logSt    *stable.Store
	disk     *diskservice.Server
	fs       *fileservice.Service
	log      *wal.Log
	logStart int
	svc      *Service
}

func newRig(t *testing.T, mutate ...func(*Config)) *rig {
	t.Helper()
	r := &rig{t: t, met: metrics.NewSet()}
	// Surface the test's fault injector (when the mutations install one) to
	// the log's stable store and the log itself, so tests can fail a
	// wal.Sync at the storage layer, not only crash at the txn-layer points.
	var probe Config
	for _, m := range mutate {
		m(&probe)
	}
	r.inj = probe.Fault
	g := device.Geometry{FragmentsPerTrack: 32, Tracks: 128}
	var err error
	r.dev, err = device.New(g, device.WithMetrics(r.met))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.stDev {
		r.stDev[i], err = device.New(g)
		if err != nil {
			t.Fatal(err)
		}
	}
	lg := device.Geometry{FragmentsPerTrack: 32, Tracks: 32} // 2 MB log pair
	for i := range r.logDev {
		r.logDev[i], err = device.New(lg)
		if err != nil {
			t.Fatal(err)
		}
	}
	r.st, err = stable.NewStore(r.stDev[0], r.stDev[1], stable.WithMetrics(r.met))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.st.Close() })
	r.logSt, err = stable.NewStore(r.logDev[0], r.logDev[1], stable.WithMetrics(r.met), stable.WithFault(r.inj))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.logSt.Close() })
	r.disk, err = diskservice.Format(diskservice.Config{Disk: r.dev, Stable: r.st, Metrics: r.met})
	if err != nil {
		t.Fatal(err)
	}
	r.fs, err = fileservice.New(fileservice.Config{Disks: fileservice.Servers(r.disk), Metrics: r.met})
	if err != nil {
		t.Fatal(err)
	}
	r.logStart, err = r.logSt.Allocate(256) // 512 KB log
	if err != nil {
		t.Fatal(err)
	}
	r.log, err = wal.Open(r.logSt, r.logStart, 256, wal.WithMetrics(r.met), wal.WithFault(r.inj))
	if err != nil {
		t.Fatal(err)
	}
	r.buildService(mutate...)
	return r
}

func (r *rig) buildService(mutate ...func(*Config)) {
	cfg := Config{
		Files: r.fs, Log: r.log, Metrics: r.met,
		LT: 50 * time.Millisecond, MaxRenewals: 3,
	}
	for _, m := range mutate {
		m(&cfg)
	}
	svc, err := New(cfg)
	if err != nil {
		r.t.Fatal(err)
	}
	r.svc = svc
	r.t.Cleanup(svc.Close)
}

// crash simulates a machine crash and restart: volatile caches are lost, the
// disks survive, and everything is remounted.
func (r *rig) crash(mutate ...func(*Config)) {
	r.t.Helper()
	r.svc.Close()
	// Volatile state dies with the machine.
	r.fs.InvalidateCaches()
	// Remount the world from the surviving media.
	disk, err := diskservice.Mount(diskservice.Config{Disk: r.dev, Stable: r.st, Metrics: r.met})
	if err != nil {
		r.t.Fatalf("remount disk: %v", err)
	}
	r.disk = disk
	fs, err := fileservice.Mount(fileservice.Config{Disks: fileservice.Servers(disk), Metrics: r.met})
	if err != nil {
		r.t.Fatalf("remount fs: %v", err)
	}
	r.fs = fs
	log, err := wal.Open(r.logSt, r.logStart, 256, wal.WithMetrics(r.met), wal.WithFault(r.inj))
	if err != nil {
		r.t.Fatal(err)
	}
	r.log = log
	r.buildService(mutate...)
}

// begin starts a txn and opens a fresh file at the given level.
func (r *rig) beginWithFile(level fit.LockLevel) (TxnID, FileID) {
	r.t.Helper()
	id, err := r.svc.Begin(1)
	if err != nil {
		r.t.Fatal(err)
	}
	fid, err := r.svc.Create(id, fit.Attributes{Locking: level})
	if err != nil {
		r.t.Fatal(err)
	}
	return id, fid
}

func TestCommitMakesWritesVisible(t *testing.T) {
	r := newRig(t)
	id, fid := r.beginWithFile(fit.LockPage)
	want := []byte("transactional hello")
	if _, err := r.svc.PWrite(id, fid, 0, want); err != nil {
		t.Fatal(err)
	}
	// Before commit, the committed file is empty.
	base, err := r.fs.ReadAt(fid, 0, 100)
	if err != nil || len(base) != 0 {
		t.Fatalf("tentative data visible before commit: %q, %v", base, err)
	}
	// But the transaction reads its own writes.
	got, err := r.svc.PRead(id, fid, 0, len(want), false)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("own-write read = %q, %v", got, err)
	}
	if err := r.svc.End(id); err != nil {
		t.Fatal(err)
	}
	got2, err := r.fs.ReadAt(fid, 0, len(want))
	if err != nil || !bytes.Equal(got2, want) {
		t.Fatalf("committed data = %q, %v", got2, err)
	}
	if r.met.Get(metrics.TxnCommitted) != 1 {
		t.Fatal("commit counter not incremented")
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	r := newRig(t)
	// Commit a baseline first.
	id, fid := r.beginWithFile(fit.LockPage)
	if _, err := r.svc.PWrite(id, fid, 0, []byte("baseline")); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(id); err != nil {
		t.Fatal(err)
	}
	// Modify and abort.
	id2, err := r.svc.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.svc.Open(id2, fid, fit.LockNone); err != nil {
		t.Fatal(err)
	}
	if _, err := r.svc.PWrite(id2, fid, 0, []byte("OVERWRITE")); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.Abort(id2); err != nil {
		t.Fatal(err)
	}
	got, err := r.fs.ReadAt(fid, 0, 8)
	if err != nil || string(got) != "baseline" {
		t.Fatalf("post-abort content = %q, %v", got, err)
	}
	// The aborted txn is gone.
	if _, err := r.svc.PRead(id2, fid, 0, 1, false); !errors.Is(err, ErrNoTxn) && !errors.Is(err, ErrAborted) {
		t.Fatalf("op on aborted txn = %v", err)
	}
}

func TestCreateAbortRemovesFile(t *testing.T) {
	r := newRig(t)
	id, fid := r.beginWithFile(fit.LockPage)
	if err := r.svc.Abort(id); err != nil {
		t.Fatal(err)
	}
	if _, err := r.fs.Attributes(fid); !errors.Is(err, fileservice.ErrNotFound) {
		t.Fatalf("aborted tcreate left the file: %v", err)
	}
}

func TestDeleteAppliesAtCommitOnly(t *testing.T) {
	r := newRig(t)
	id, fid := r.beginWithFile(fit.LockFile)
	if _, err := r.svc.PWrite(id, fid, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(id); err != nil {
		t.Fatal(err)
	}
	// Delete under a txn, abort: file survives.
	id2, err := r.svc.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.svc.Open(id2, fid, fit.LockFile); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.Delete(id2, fid); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.Abort(id2); err != nil {
		t.Fatal(err)
	}
	if _, err := r.fs.Attributes(fid); err != nil {
		t.Fatalf("file gone after aborted tdelete: %v", err)
	}
	// Delete and commit: file gone.
	id3, err := r.svc.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.svc.Open(id3, fid, fit.LockFile); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.Delete(id3, fid); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(id3); err != nil {
		t.Fatal(err)
	}
	if _, err := r.fs.Attributes(fid); !errors.Is(err, fileservice.ErrNotFound) {
		t.Fatalf("file survives committed tdelete: %v", err)
	}
}

func TestCursorReadWriteLSeek(t *testing.T) {
	r := newRig(t)
	id, fid := r.beginWithFile(fit.LockPage)
	if _, err := r.svc.Write(id, fid, []byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.svc.Write(id, fid, []byte("world")); err != nil {
		t.Fatal(err)
	}
	if pos, err := r.svc.LSeek(id, fid, 0, SeekSet); err != nil || pos != 0 {
		t.Fatalf("LSeek = %d, %v", pos, err)
	}
	got, err := r.svc.Read(id, fid, 11, false)
	if err != nil || string(got) != "hello world" {
		t.Fatalf("Read = %q, %v", got, err)
	}
	if pos, err := r.svc.LSeek(id, fid, -5, SeekEnd); err != nil || pos != 6 {
		t.Fatalf("LSeek(End,-5) = %d, %v", pos, err)
	}
	got, err = r.svc.Read(id, fid, 5, false)
	if err != nil || string(got) != "world" {
		t.Fatalf("Read after seek = %q, %v", got, err)
	}
	if pos, err := r.svc.LSeek(id, fid, -2, SeekCur); err != nil || pos != 9 {
		t.Fatalf("LSeek(Cur,-2) = %d, %v", pos, err)
	}
	if _, err := r.svc.LSeek(id, fid, 0, 99); !errors.Is(err, ErrBadWhence) {
		t.Fatalf("bad whence = %v", err)
	}
	if _, err := r.svc.LSeek(id, fid, -100, SeekSet); !errors.Is(err, fileservice.ErrBadOffset) {
		t.Fatalf("negative seek = %v", err)
	}
	attr, err := r.svc.GetAttribute(id, fid)
	if err != nil || attr.Size != 11 {
		t.Fatalf("GetAttribute size = %d, %v", attr.Size, err)
	}
	if err := r.svc.End(id); err != nil {
		t.Fatal(err)
	}
}

func TestIsolationPageLevel(t *testing.T) {
	r := newRig(t)
	id, fid := r.beginWithFile(fit.LockPage)
	if _, err := r.svc.PWrite(id, fid, 0, []byte("AAAA")); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(id); err != nil {
		t.Fatal(err)
	}
	// Writer holds an IWrite on page 0.
	w, err := r.svc.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.svc.Open(w, fid, fit.LockNone); err != nil {
		t.Fatal(err)
	}
	if _, err := r.svc.PWrite(w, fid, 0, []byte("BBBB")); err != nil {
		t.Fatal(err)
	}
	// A reader's access to page 0 blocks until the writer ends.
	rd, err := r.svc.Begin(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.svc.Open(rd, fid, fit.LockNone); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct {
		data []byte
		err  error
	}, 1)
	go func() {
		d, err := r.svc.PRead(rd, fid, 0, 4, false)
		done <- struct {
			data []byte
			err  error
		}{d, err}
	}()
	select {
	case res := <-done:
		t.Fatalf("reader not blocked by writer's IWrite: %q, %v", res.data, res.err)
	case <-time.After(30 * time.Millisecond):
	}
	if err := r.svc.End(w); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-done:
		if res.err != nil || string(res.data) != "BBBB" {
			t.Fatalf("reader after writer commit = %q, %v", res.data, res.err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader still blocked after writer committed")
	}
	if err := r.svc.End(rd); err != nil {
		t.Fatal(err)
	}
}

func TestRecordLevelDisjointRangesConcurrent(t *testing.T) {
	r := newRig(t)
	id, fid := r.beginWithFile(fit.LockRecord)
	if _, err := r.svc.PWrite(id, fid, 0, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(id); err != nil {
		t.Fatal(err)
	}
	// Two transactions write disjoint ranges; neither blocks.
	t1, err := r.svc.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := r.svc.Begin(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.svc.Open(t1, fid, fit.LockRecord); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.Open(t2, fid, fit.LockRecord); err != nil {
		t.Fatal(err)
	}
	if _, err := r.svc.PWrite(t1, fid, 0, []byte("11111")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.svc.PWrite(t2, fid, 50, []byte("22222")); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(t1); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(t2); err != nil {
		t.Fatal(err)
	}
	got, err := r.fs.ReadAt(fid, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:5]) != "11111" || string(got[50:55]) != "22222" {
		t.Fatalf("record-level commits lost: %q ... %q", got[:5], got[50:55])
	}
}

func TestWALTechniquePreservesContiguity(t *testing.T) {
	r := newRig(t, func(c *Config) { c.ForceTechnique = intentions.WAL })
	id, fid := r.beginWithFile(fit.LockPage)
	if _, err := r.svc.PWrite(id, fid, 0, make([]byte, 4*fileservice.BlockSize)); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(id); err != nil {
		t.Fatal(err)
	}
	extsBefore, _, err := r.fs.ContiguityProfile(fid)
	if err != nil {
		t.Fatal(err)
	}
	// Update a middle block transactionally.
	id2, err := r.svc.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.svc.Open(id2, fid, fit.LockNone); err != nil {
		t.Fatal(err)
	}
	if _, err := r.svc.PWrite(id2, fid, fileservice.BlockSize, bytes.Repeat([]byte("W"), fileservice.BlockSize)); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(id2); err != nil {
		t.Fatal(err)
	}
	extsAfter, _, err := r.fs.ContiguityProfile(fid)
	if err != nil {
		t.Fatal(err)
	}
	if extsAfter != extsBefore {
		t.Fatalf("WAL commit changed contiguity: %d -> %d extents (§6.7 says it must not)", extsBefore, extsAfter)
	}
	got, err := r.fs.ReadAt(fid, fileservice.BlockSize, 4)
	if err != nil || string(got) != "WWWW" {
		t.Fatalf("WAL-committed data = %q, %v", got, err)
	}
}

func TestShadowTechniqueBreaksContiguity(t *testing.T) {
	r := newRig(t, func(c *Config) { c.ForceTechnique = intentions.ShadowPage })
	id, fid := r.beginWithFile(fit.LockPage)
	if _, err := r.svc.PWrite(id, fid, 0, make([]byte, 4*fileservice.BlockSize)); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(id); err != nil {
		t.Fatal(err)
	}
	extsBefore, _, err := r.fs.ContiguityProfile(fid)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := r.svc.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.svc.Open(id2, fid, fit.LockNone); err != nil {
		t.Fatal(err)
	}
	if _, err := r.svc.PWrite(id2, fid, fileservice.BlockSize, bytes.Repeat([]byte("S"), fileservice.BlockSize)); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(id2); err != nil {
		t.Fatal(err)
	}
	extsAfter, _, err := r.fs.ContiguityProfile(fid)
	if err != nil {
		t.Fatal(err)
	}
	if extsAfter <= extsBefore {
		t.Fatalf("shadow commit kept contiguity: %d -> %d extents (§6.7 says it destroys it)", extsBefore, extsAfter)
	}
	got, err := r.fs.ReadAt(fid, fileservice.BlockSize, 4)
	if err != nil || string(got) != "SSSS" {
		t.Fatalf("shadow-committed data = %q, %v", got, err)
	}
}

func TestDefaultTechniqueFollowsContiguityRule(t *testing.T) {
	r := newRig(t)
	// A fresh sequentially written file is contiguous -> WAL keeps it so.
	id, fid := r.beginWithFile(fit.LockPage)
	if _, err := r.svc.PWrite(id, fid, 0, make([]byte, 3*fileservice.BlockSize)); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(id); err != nil {
		t.Fatal(err)
	}
	before, _, _ := r.fs.ContiguityProfile(fid)
	if before != 1 {
		t.Skipf("file not contiguous after create (%d extents)", before)
	}
	id2, _ := r.svc.Begin(1)
	if err := r.svc.Open(id2, fid, fit.LockNone); err != nil {
		t.Fatal(err)
	}
	if _, err := r.svc.PWrite(id2, fid, 0, []byte("update")); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(id2); err != nil {
		t.Fatal(err)
	}
	after, _, _ := r.fs.ContiguityProfile(fid)
	if after != 1 {
		t.Fatalf("contiguous file fragmented by default-rule commit: %d extents", after)
	}
}

func TestCrashBeforeApplyRedoneByRecovery(t *testing.T) {
	r := newRig(t)
	id, fid := r.beginWithFile(fit.LockPage)
	want := bytes.Repeat([]byte("R"), 100)
	if _, err := r.svc.PWrite(id, fid, 0, want); err != nil {
		t.Fatal(err)
	}
	r.svc.SetCrashAfterLog(true)
	if err := r.svc.End(id); !errors.Is(err, ErrCrashInjected) {
		t.Fatalf("End with crash hook = %v", err)
	}
	// The machine dies before intentions are applied.
	r.crash()
	committed, err := r.svc.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if committed != 1 {
		t.Fatalf("Recover redid %d txns, want 1", committed)
	}
	got, err := r.fs.ReadAt(fid, 0, 100)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("recovered data = %q, %v", got, err)
	}
	size, err := r.fs.Size(fid)
	if err != nil || size != 100 {
		t.Fatalf("recovered size = %d, %v", size, err)
	}
}

func TestCrashBeforeCommitPointLosesNothingCommitted(t *testing.T) {
	r := newRig(t)
	// Commit one txn fully.
	id, fid := r.beginWithFile(fit.LockRecord)
	if _, err := r.svc.PWrite(id, fid, 0, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(id); err != nil {
		t.Fatal(err)
	}
	// Start another, write tentatively, then crash without commit.
	id2, err := r.svc.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.svc.Open(id2, fid, fit.LockRecord); err != nil {
		t.Fatal(err)
	}
	if _, err := r.svc.PWrite(id2, fid, 0, []byte("VOLATILE")); err != nil {
		t.Fatal(err)
	}
	r.crash()
	if _, err := r.svc.Recover(); err != nil {
		t.Fatal(err)
	}
	got, err := r.fs.ReadAt(fid, 0, 7)
	if err != nil || string(got) != "durable" {
		t.Fatalf("post-crash content = %q, %v (tentative data must be discarded)", got, err)
	}
}

func TestRecoveryIdempotent(t *testing.T) {
	r := newRig(t)
	id, fid := r.beginWithFile(fit.LockPage)
	want := []byte("idempotent")
	if _, err := r.svc.PWrite(id, fid, 0, want); err != nil {
		t.Fatal(err)
	}
	r.svc.SetCrashAfterLog(true)
	if err := r.svc.End(id); !errors.Is(err, ErrCrashInjected) {
		t.Fatal(err)
	}
	r.crash()
	if _, err := r.svc.Recover(); err != nil {
		t.Fatal(err)
	}
	// Crash again right after recovery and recover again.
	r.crash()
	if _, err := r.svc.Recover(); err != nil {
		t.Fatal(err)
	}
	got, err := r.fs.ReadAt(fid, 0, len(want))
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("double-recovered data = %q, %v", got, err)
	}
}

func TestDeadlockResolvedByTimeout(t *testing.T) {
	r := newRig(t, func(c *Config) { c.LT = 20 * time.Millisecond; c.MaxRenewals = 2 })
	sw := r.svc.Locks().StartSweeper(5 * time.Millisecond)
	defer sw.Close()
	// Two files, two txns, opposite acquisition order.
	a, fa := r.beginWithFile(fit.LockFile)
	if _, err := r.svc.PWrite(a, fa, 0, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(a); err != nil {
		t.Fatal(err)
	}
	b, fb := r.beginWithFile(fit.LockFile)
	if _, err := r.svc.PWrite(b, fb, 0, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(b); err != nil {
		t.Fatal(err)
	}

	t1, _ := r.svc.Begin(1)
	t2, _ := r.svc.Begin(2)
	for _, pair := range []struct {
		id  TxnID
		fid FileID
	}{{t1, fa}, {t1, fb}, {t2, fa}, {t2, fb}} {
		if err := r.svc.Open(pair.id, pair.fid, fit.LockFile); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.svc.PWrite(t1, fa, 0, []byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.svc.PWrite(t2, fb, 0, []byte("2")); err != nil {
		t.Fatal(err)
	}
	// Now cross: both block; the sweeper must abort at least one.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, errs[0] = r.svc.PWrite(t1, fb, 0, []byte("1"))
		if errs[0] == nil {
			errs[0] = r.svc.End(t1)
		}
	}()
	go func() {
		defer wg.Done()
		_, errs[1] = r.svc.PWrite(t2, fa, 0, []byte("2"))
		if errs[1] == nil {
			errs[1] = r.svc.End(t2)
		}
	}()
	waitCh := make(chan struct{})
	go func() { wg.Wait(); close(waitCh) }()
	select {
	case <-waitCh:
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock not resolved within 10s")
	}
	aborted := 0
	for _, err := range errs {
		if errors.Is(err, ErrAborted) {
			aborted++
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if aborted == 0 {
		t.Fatal("deadlock resolved without aborting any transaction?")
	}
	if r.met.Get(metrics.TxnTimedOut) == 0 {
		t.Fatal("timeout counter not incremented")
	}
}

func TestSerializabilityBankTransfers(t *testing.T) {
	// The classic invariant: concurrent transfers between accounts keep the
	// total constant. Record-level locking on a single accounts file.
	r := newRig(t, func(c *Config) { c.LT = 200 * time.Millisecond; c.MaxRenewals = 5 })
	sw := r.svc.Locks().StartSweeper(20 * time.Millisecond)
	defer sw.Close()
	const accounts = 8
	const initial = 1000

	setup, fid := r.beginWithFile(fit.LockRecord)
	for i := 0; i < accounts; i++ {
		if _, err := r.svc.PWrite(setup, fid, int64(i*8), encode64(initial)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.svc.End(setup); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	workers := 6
	transfers := 25
	var committed, abortedCount int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < transfers; i++ {
				from := rng.Intn(accounts)
				to := rng.Intn(accounts)
				if from == to {
					continue
				}
				err := transfer(r.svc, fid, from, to, 1+rng.Intn(10))
				mu.Lock()
				if err == nil {
					committed++
				} else if errors.Is(err, ErrAborted) {
					abortedCount++
				} else {
					t.Errorf("transfer: %v", err)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	// Verify conservation.
	total := 0
	for i := 0; i < accounts; i++ {
		raw, err := r.fs.ReadAt(fid, int64(i*8), 8)
		if err != nil {
			t.Fatal(err)
		}
		total += decode64(raw)
	}
	if total != accounts*initial {
		t.Fatalf("money not conserved: total %d, want %d (committed=%d aborted=%d)",
			total, accounts*initial, committed, abortedCount)
	}
	if committed == 0 {
		t.Fatal("no transfer ever committed")
	}
}

// transfer moves amount between two accounts in one transaction.
func transfer(svc *Service, fid FileID, from, to, amount int) error {
	id, err := svc.Begin(from)
	if err != nil {
		return err
	}
	if err := svc.Open(id, fid, fit.LockRecord); err != nil {
		_ = svc.Abort(id)
		return err
	}
	// Lock in a canonical order to reduce (not eliminate) deadlocks; the
	// timeout handles the rest.
	first, second := from, to
	if second < first {
		first, second = second, first
	}
	bal := map[int]int{}
	for _, acct := range []int{first, second} {
		raw, err := svc.PRead(id, fid, int64(acct*8), 8, true)
		if err != nil {
			_ = svc.Abort(id)
			return err
		}
		bal[acct] = decode64(raw)
	}
	bal[from] -= amount
	bal[to] += amount
	for _, acct := range []int{first, second} {
		if _, err := svc.PWrite(id, fid, int64(acct*8), encode64(bal[acct])); err != nil {
			_ = svc.Abort(id)
			return err
		}
	}
	return svc.End(id)
}

func encode64(v int) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[7-i] = byte(v >> (8 * i))
	}
	return b
}

func decode64(b []byte) int {
	v := 0
	for _, x := range b {
		v = v<<8 | int(x)
	}
	return v
}

func TestFileServiceClassificationFlips(t *testing.T) {
	r := newRig(t)
	id, fid := r.beginWithFile(fit.LockPage)
	attr, err := r.fs.Attributes(fid)
	if err != nil || attr.Service != fit.ServiceTransaction {
		t.Fatalf("file not classified transactional while open in txn: %+v, %v", attr, err)
	}
	if _, err := r.svc.PWrite(id, fid, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(id); err != nil {
		t.Fatal(err)
	}
	attr, err = r.fs.Attributes(fid)
	if err != nil || attr.Service != fit.ServiceBasic {
		t.Fatalf("file not reclassified basic after txn end: %+v, %v", attr, err)
	}
}

func TestErrorsAndEdgeCases(t *testing.T) {
	r := newRig(t)
	if _, err := r.svc.PRead(999, 1, 0, 1, false); !errors.Is(err, ErrNoTxn) {
		t.Fatalf("unknown txn = %v", err)
	}
	id, err := r.svc.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.svc.PRead(id, 12345, 0, 1, false); !errors.Is(err, ErrNotOpenInTxn) {
		t.Fatalf("unopened file = %v", err)
	}
	fid, err := r.svc.Create(id, fit.Attributes{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.svc.PWrite(id, fid, -1, []byte("x")); !errors.Is(err, fileservice.ErrBadOffset) {
		t.Fatalf("negative write = %v", err)
	}
	// Zero-length ops are no-ops.
	if n, err := r.svc.PWrite(id, fid, 0, nil); err != nil || n != 0 {
		t.Fatalf("empty write = %d, %v", n, err)
	}
	if err := r.svc.CloseFile(id, fid); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(id); err != nil {
		t.Fatal(err)
	}
	// Ops after end.
	if err := r.svc.End(id); !errors.Is(err, ErrNoTxn) {
		t.Fatalf("double End = %v", err)
	}
	if err := r.svc.Abort(id); !errors.Is(err, ErrNoTxn) {
		t.Fatalf("Abort after End = %v", err)
	}
}

func TestManyCommitsTruncateLog(t *testing.T) {
	r := newRig(t)
	id, fid := r.beginWithFile(fit.LockRecord)
	if _, err := r.svc.PWrite(id, fid, 0, make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(id); err != nil {
		t.Fatal(err)
	}
	// Enough committed bytes to overflow the 512 KB log several times.
	payload := bytes.Repeat([]byte("L"), 8000)
	for i := 0; i < 100; i++ {
		tx, err := r.svc.Begin(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.svc.Open(tx, fid, fit.LockRecord); err != nil {
			t.Fatal(err)
		}
		if _, err := r.svc.PWrite(tx, fid, 0, payload); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if err := r.svc.End(tx); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	got, err := r.fs.ReadAt(fid, 0, 10)
	if err != nil || string(got) != "LLLLLLLLLL" {
		t.Fatalf("final content = %q, %v", got, err)
	}
	fmt.Println("log bytes:", r.log.AppendedBytes())
}
