package txn

import (
	"fmt"

	"repro/internal/intentions"
)

// Nested transactions. §6.4 acknowledges that "a transaction can also take a
// long time if it is nested"; this file provides the subtransaction model
// that remark presupposes, in the simplified Moss style:
//
//   - A child transaction acquires locks on behalf of its top-level ancestor
//     (the lock manager sees one transaction), so locks survive child commit
//     and release only when the top-level transaction ends — strict 2PL for
//     the whole family.
//   - A child's reads see the committed state overlaid with every ancestor's
//     tentative data and then its own.
//   - Child commit merges its intentions (and created/deleted lists, file
//     opens and tentative sizes) into the parent; nothing reaches the log or
//     the disks until the top-level commit.
//   - Child abort discards only the child's own tentative data; the
//     ancestors' work is untouched. Locks the child acquired are retained by
//     the family (a conservative, safe simplification).

// ErrLiveChildren reports an End/Abort of a transaction that still has
// running subtransactions.
var ErrLiveChildren = fmt.Errorf("txn: transaction has live subtransactions")

// BeginChild starts a subtransaction of parent.
func (s *Service) BeginChild(parent TxnID) (TxnID, error) {
	pt, err := s.get(parent)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.mu.Unlock()
	ct := &txnState{
		id: id, pid: pt.pid,
		parent:     pt,
		lockID:     pt.lockID,
		files:      make(map[FileID]*txnFile),
		openedSelf: make(map[FileID]bool),
		list:       intentions.NewList(uint64(id)),
	}
	pt.mu.Lock()
	if pt.done {
		pt.mu.Unlock()
		return 0, ErrAborted
	}
	pt.children++
	pt.kids = append(pt.kids, ct)
	pt.mu.Unlock()
	s.mu.Lock()
	s.txns[id] = ct
	s.mu.Unlock()
	return id, nil
}

// IsChild reports whether the transaction is a subtransaction.
func (s *Service) IsChild(id TxnID) bool {
	t, err := s.get(id)
	if err != nil {
		return false
	}
	return t.parent != nil
}

// ancestry returns the chain of intention lists from the top-level ancestor
// down to (and including) t, the order overlays apply in.
func (t *txnState) ancestry() []*intentions.List {
	var chain []*intentions.List
	for cur := t; cur != nil; cur = cur.parent {
		chain = append(chain, cur.list)
	}
	// Reverse: root first.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

// inheritedFile looks the file up in the ancestors and clones its view into
// t. Returns nil when no ancestor has it open.
func (t *txnState) inheritedFile(fid FileID) *txnFile {
	for cur := t.parent; cur != nil; cur = cur.parent {
		cur.mu.Lock()
		f, ok := cur.files[fid]
		if ok {
			cp := &txnFile{
				id: fid, level: f.level,
				size: f.size, baseBlocks: f.baseBlocks,
			}
			cur.mu.Unlock()
			return cp
		}
		cur.mu.Unlock()
	}
	return nil
}

// endChild merges the committed child into its parent.
func (s *Service) endChild(t *txnState) error {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return ErrAborted
	}
	if t.children > 0 {
		t.mu.Unlock()
		return ErrLiveChildren
	}
	t.done = true
	p := t.parent
	files := t.files
	openedSelf := t.openedSelf
	created := t.created
	deleted := t.deleted
	t.mu.Unlock()

	_ = t.list.SetStatus(intentions.Committed)
	// Merge intentions in order; page intentions for the same block replace
	// the parent's (the child saw the newer data).
	for _, rec := range t.list.GetIntentions() {
		rec.Seq = 0
		if err := p.list.SetIntention(rec); err != nil {
			return err
		}
	}
	p.mu.Lock()
	for fid, f := range files {
		if pf, ok := p.files[fid]; ok {
			pf.size = f.size // the child's tentative size is the newest view
		} else {
			p.files[fid] = f
			// The child's fs-level open transfers to the parent, which will
			// release it at top-level end.
			if openedSelf[fid] {
				if p.openedSelf == nil {
					p.openedSelf = map[FileID]bool{}
				}
				p.openedSelf[fid] = true
			}
		}
	}
	p.created = append(p.created, created...)
	p.deleted = append(p.deleted, deleted...)
	p.children--
	dropKid(p, t)
	p.mu.Unlock()

	s.mu.Lock()
	// Ownership of uncommitted-created files moves to the parent.
	for _, fid := range created {
		if s.uncommitted[fid] == t.id {
			s.uncommitted[fid] = p.id
		}
	}
	delete(s.txns, t.id)
	s.mu.Unlock()
	return nil
}

// abortChild rolls back only the child's work.
func (s *Service) abortChild(t *txnState) {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	p := t.parent
	created := append([]FileID(nil), t.created...)
	opened := make([]FileID, 0, len(t.files))
	for fid := range t.files {
		opened = append(opened, fid)
	}
	t.mu.Unlock()

	_ = t.list.SetStatus(intentions.Aborted)
	// Files the child created vanish; files it opened are closed (the
	// parent's own opens are separate fs.Open calls and unaffected —
	// inherited views were clones without an fs.Open).
	createdSet := map[FileID]bool{}
	for _, fid := range created {
		createdSet[fid] = true
		s.releaseFile(t, fid)
		_ = s.fs.Delete(fid)
	}
	for _, fid := range opened {
		if !createdSet[fid] && t.openedSelf[fid] {
			s.releaseFile(t, fid)
		}
	}
	p.mu.Lock()
	p.children--
	dropKid(p, t)
	p.mu.Unlock()
	s.mu.Lock()
	for _, fid := range created {
		delete(s.uncommitted, fid)
	}
	delete(s.txns, t.id)
	s.mu.Unlock()
	s.met.Inc(metricTxnChildAborted)
}

// dropKid removes a finished child from the parent's kid list; callers hold
// p.mu.
func dropKid(p, child *txnState) {
	for i, k := range p.kids {
		if k == child {
			p.kids = append(p.kids[:i], p.kids[i+1:]...)
			return
		}
	}
}

// sameFamily reports whether two transaction ids share a top-level ancestor
// (callers hold s.mu).
func (s *Service) sameFamily(a, b TxnID) bool {
	if a == b {
		return true
	}
	ta, tb := s.txns[a], s.txns[b]
	if ta == nil || tb == nil {
		return false
	}
	return ta.lockID == tb.lockID
}

// metricTxnChildAborted counts subtransaction rollbacks.
const metricTxnChildAborted = "txn.child_aborted"
