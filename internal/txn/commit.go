package txn

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/diskservice"
	"repro/internal/fault"
	"repro/internal/fileservice"
	"repro/internal/fit"
	"repro/internal/intentions"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/wal"
)

// Fault points along the commit sequence of §6.7. before-log is the last
// instant at which the transaction can still vanish without trace; after-log
// the commit record is durable but nothing is applied in place; mid-apply
// dies between two in-place applications (arm with After to choose which);
// after-apply dies with everything applied but locks still held and the
// intentions list not yet retired.
var (
	PtCommitBeforeLog  = fault.Register("txn.commit.before-log")
	PtCommitAfterLog   = fault.Register("txn.commit.after-log")
	PtCommitMidApply   = fault.Register("txn.commit.mid-apply")
	PtCommitAfterApply = fault.Register("txn.commit.after-apply")
)

// End commits the transaction (tend): the intention flag moves to commit,
// the commit record reaches stable storage, the intentions are made
// permanent (WAL or shadow page per §6.7), and only then are the locks
// released — the second phase of strict 2PL.
func (s *Service) End(id TxnID) error {
	return s.EndCtx(context.Background(), id)
}

// EndCtx is End carrying a trace context. If a fault-injected crash cuts
// the commit sequence short, the span stays in-flight and the flight
// recorder's fault dump captures the interrupted commit mid-operation.
func (s *Service) EndCtx(ctx context.Context, id TxnID) error {
	ctx, sp := s.obsRec.StartOr(ctx, obs.LayerTxn, "end")
	sp.SetTxn(uint64(id))
	err := s.end(ctx, id)
	sp.End(err)
	return err
}

func (s *Service) end(ctx context.Context, id TxnID) error {
	t, err := s.get(id)
	if err != nil {
		return err
	}
	if s.locks.Broken(t.lockID) {
		root := t
		for root.parent != nil {
			root = root.parent
		}
		s.abort(root)
		return fmt.Errorf("%w: deadlock timeout", ErrAborted)
	}
	if t.parent != nil {
		return s.endChild(t)
	}
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return ErrAborted
	}
	if t.children > 0 {
		t.mu.Unlock()
		return ErrLiveChildren
	}
	t.mu.Unlock()

	// Decide the technique for every intention (§6.7): WAL for record mode
	// and contiguously stored files, shadow page otherwise.
	t.list.AssignTechniques(func(file uint64) bool {
		switch s.force {
		case intentions.WAL:
			return true
		case intentions.ShadowPage:
			return false
		}
		exts, err := s.fs.Extents(FileID(file))
		if err != nil {
			return true
		}
		return len(exts) <= 1
	})
	t.list.AdjustTechniques(func(r intentions.Record) intentions.Technique {
		if r.Kind == intentions.PageKind && r.Technique == intentions.ShadowPage {
			if _, _, err := s.fs.BlockLocation(FileID(r.File), r.Block); err != nil {
				// A block new in this transaction has no original location to
				// shadow; it commits through the log.
				return intentions.WAL
			}
		}
		return r.Technique
	})

	s.fault.Hit(PtCommitBeforeLog)
	if err := s.gc.commit(ctx, t); err != nil {
		if errors.Is(err, ErrCommitInterrupted) {
			// The batch leader crashed with our commit record possibly
			// durable: the outcome is unknown until recovery, so hold the
			// locks and the log records rather than aborting.
			return err
		}
		// The commit never reached stable storage: abort cleanly. The
		// coordinator already backed our records out of the log.
		s.abort(t)
		return fmt.Errorf("%w: commit logging failed: %v", ErrAborted, err)
	}
	// The commit point has passed; the transaction is durably committed.
	// From here on the transaction owes the coordinator one applied() call,
	// which it withholds on the recoverable paths below so the log keeps the
	// redo records until recovery.
	_ = t.list.SetStatus(intentions.Committed)
	s.fault.Hit(PtCommitAfterLog)
	if s.crashAfterLog {
		// Test hook: simulate a crash between the commit point and the
		// application of the intentions.
		return ErrCrashInjected
	}
	if err := s.applyIntentions(t); err != nil {
		// Redo will finish the job at recovery; report but do not abort.
		return fmt.Errorf("txn: committed but application incomplete (recoverable): %w", err)
	}
	s.fault.Hit(PtCommitAfterApply)
	s.finish(t)
	s.gc.applied()
	s.met.Inc(metrics.TxnCommitted)
	s.maybeTruncateLog()
	return nil
}

// ErrCrashInjected is returned by End when the crash-injection hook is
// armed (SetCrashAfterLog): the commit record is durable but intentions were
// not applied, as if the machine died at the worst moment.
var ErrCrashInjected = errors.New("txn: crash injected after commit point")

// SetCrashAfterLog arms the crash-injection fault hook used by recovery
// tests and experiment E10: the next End stops right after the commit
// record reaches stable storage, before the intentions are applied.
func (s *Service) SetCrashAfterLog(v bool) { s.crashAfterLog = v }

// writeCommitRecords appends the transaction's redo records and its commit
// record. It does NOT sync: the group-commit coordinator (group.go) owns the
// barrier, batching many transactions' records under one wal.Sync. On any
// error (including wal.ErrLogFull) it returns immediately; the coordinator
// rolls the partial append back and handles log-full recovery.
func (s *Service) writeCommitRecords(t *txnState) error {
	recs := t.list.GetIntentions()
	append1 := func(r wal.Record) error {
		_, err := s.log.Append(r)
		return err
	}
	for _, rec := range recs {
		switch {
		case rec.Kind == intentions.RecordKind:
			if err := append1(wal.Record{
				Type: wal.RecUpdate, Txn: uint64(t.id), File: rec.File,
				Disk: kindRecord, Offset: uint32(rec.Offset), Data: rec.Data,
			}); err != nil {
				return err
			}
		case rec.Technique == intentions.ShadowPage:
			// Shadow data is already staged on stable storage at the block's
			// old address; log only the swap descriptor.
			disk, addr, err := s.fs.BlockLocation(FileID(rec.File), rec.Block)
			if err != nil {
				return err
			}
			var payload [2]byte
			binary.BigEndian.PutUint16(payload[:], disk)
			if err := append1(wal.Record{
				Type: wal.RecUpdate, Txn: uint64(t.id), File: rec.File,
				Disk: kindShadow, Addr: uint32(rec.Block), Offset: addr, Data: payload[:],
			}); err != nil {
				return err
			}
			// Restage the final page image (intervening writes may have
			// updated the intention since the last stage).
			if err := s.fs.DiskServer(int(disk)).Put(int(addr), rec.Data, diskservice.PutOptions{
				Stability: diskservice.StableOnly, WaitStable: true,
			}); err != nil {
				return err
			}
		default: // page intention via WAL
			if err := append1(wal.Record{
				Type: wal.RecUpdate, Txn: uint64(t.id), File: rec.File,
				Disk: kindPage, Addr: uint32(rec.Block), Data: rec.Data,
			}); err != nil {
				return err
			}
		}
	}
	// File sizes, so page-mode growth survives recovery.
	t.mu.Lock()
	type fsize struct {
		fid  FileID
		size int64
	}
	var sizes []fsize
	for fid, f := range t.files {
		sizes = append(sizes, fsize{fid, f.size})
	}
	t.mu.Unlock()
	for _, fs := range sizes {
		var payload [8]byte
		binary.BigEndian.PutUint64(payload[:], uint64(fs.size))
		if err := append1(wal.Record{
			Type: wal.RecUpdate, Txn: uint64(t.id), File: uint64(fs.fid),
			Disk: kindSize, Data: payload[:],
		}); err != nil {
			return err
		}
	}
	return append1(wal.Record{Type: wal.RecCommit, Txn: uint64(t.id)})
}

// applyIntentions makes the committed changes permanent and deletes the
// intention records (§6.7).
func (s *Service) applyIntentions(t *txnState) error {
	for _, rec := range t.list.GetIntentions() {
		s.fault.Hit(PtCommitMidApply)
		if err := s.applyOne(uint64(t.id), rec); err != nil {
			return err
		}
		t.list.RemoveIntentions(rec.Seq)
	}
	// Apply tentative sizes (page-mode writes do not move the size).
	t.mu.Lock()
	files := make([]*txnFile, 0, len(t.files))
	for _, f := range t.files {
		files = append(files, f)
	}
	deleted := append([]FileID(nil), t.deleted...)
	t.mu.Unlock()
	for _, f := range files {
		cur, err := s.fs.Size(f.id)
		if err != nil {
			return err
		}
		if cur != f.size {
			if err := s.fs.Truncate(f.id, f.size); err != nil {
				return err
			}
		}
	}
	for _, fid := range deleted {
		s.releaseFile(t, fid)
		if err := s.fs.Delete(fid); err != nil && !errors.Is(err, fileservice.ErrNotFound) {
			return err
		}
	}
	return nil
}

// applyOne makes one intention permanent.
func (s *Service) applyOne(txn uint64, rec intentions.Record) error {
	fid := FileID(rec.File)
	switch {
	case rec.Kind == intentions.RecordKind:
		_, err := s.fs.WriteAt(fid, rec.Offset, rec.Data)
		return err
	case rec.Technique == intentions.ShadowPage:
		disk, _, err := s.fs.BlockLocation(fid, rec.Block)
		if err != nil {
			return err
		}
		newAddr, err := s.fs.DiskServer(int(disk)).AllocateBlocks(1)
		if err != nil {
			return err
		}
		if err := s.fs.DiskServer(int(disk)).Put(newAddr, rec.Data, diskservice.PutOptions{}); err != nil {
			return err
		}
		return s.fs.ReplaceBlockDescriptor(fid, rec.Block, fit.Extent{
			Disk: disk, Addr: uint32(newAddr), Count: 1,
		})
	default:
		return s.fs.WriteBlockThrough(fid, rec.Block, rec.Data)
	}
}

// finish releases everything a completed transaction holds: file opens,
// service classification, locks, and the transaction entry itself.
func (s *Service) finish(t *txnState) {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	files := make([]FileID, 0, len(t.files))
	for fid := range t.files {
		files = append(files, fid)
	}
	created := append([]FileID(nil), t.created...)
	t.mu.Unlock()
	for _, fid := range files {
		s.releaseFile(t, fid) // idempotent: already-released files are skipped
	}
	s.locks.ReleaseAll(t.lockID)
	s.mu.Lock()
	for _, fid := range created {
		delete(s.uncommitted, fid)
	}
	delete(s.txns, t.id)
	s.mu.Unlock()
}

// releaseFile closes one file's service-level open exactly once.
func (s *Service) releaseFile(t *txnState, fid FileID) {
	t.mu.Lock()
	if t.released == nil {
		t.released = map[FileID]bool{}
	}
	if t.released[fid] {
		t.mu.Unlock()
		return
	}
	t.released[fid] = true
	t.mu.Unlock()
	_ = s.fs.Close(fid)
	s.noteClose(fid)
}

// Abort rolls the transaction back (tabort): tentative data is discarded,
// files created inside the transaction are removed, and locks are released.
func (s *Service) Abort(id TxnID) error {
	t, err := s.get(id)
	if err != nil {
		return err
	}
	s.abort(t)
	return nil
}

func (s *Service) abort(t *txnState) {
	if t.parent != nil {
		s.abortChild(t)
		return
	}
	// Cascade: live subtransactions die with their ancestor.
	t.mu.Lock()
	kids := append([]*txnState(nil), t.kids...)
	t.mu.Unlock()
	for _, k := range kids {
		s.abortChild(k)
	}
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	created := append([]FileID(nil), t.created...)
	t.mu.Unlock()
	_ = t.list.SetStatus(intentions.Aborted)
	for _, fid := range created {
		s.releaseFile(t, fid)
		_ = s.fs.Delete(fid)
	}
	s.finish(t)
	s.met.Inc(metrics.TxnAborted)
}

// maybeTruncateLog resets the log once it is more than half full — but only
// from a quiescent state. With group commit, other transactions' records may
// sit in the log synced-but-unapplied (their batch is durable while they are
// still applying intentions, or their leader crashed before waking them), and
// those records MUST survive until redo can no longer need them.
// beginTruncation atomically verifies no batch is forming, no sync is in
// flight, and every batched commit has applied its intentions; until
// endTruncation, new committers wait.
func (s *Service) maybeTruncateLog() {
	if s.log.AppendedBytes() <= s.log.Capacity()/2 {
		return
	}
	if !s.gc.beginTruncation() {
		return // another commit is in flight; a later End will retry
	}
	defer s.gc.endTruncation()
	if err := s.fs.Flush(); err != nil {
		return // keep the log; redo still possible
	}
	_, _ = s.log.Append(wal.Record{Type: wal.RecCheckpoint})
	_ = s.log.Reset()
}

// Recover replays the write-ahead log after a crash: the updates of
// committed transactions are redone (idempotently), tentative data of
// unfinished transactions is discarded, and the log is truncated. Call it
// on a freshly mounted Service before accepting new transactions.
func (s *Service) Recover() (committed int, err error) {
	// Forget any pre-crash group-commit state: parked followers are gone and
	// their unapplied counts with them; redo below settles their outcomes.
	s.gc.reset()
	type txnLog struct {
		updates   []wal.Record
		committed bool
	}
	logs := map[uint64]*txnLog{}
	var order []uint64
	err = s.log.Replay(func(r wal.Record) error {
		switch r.Type {
		case wal.RecUpdate:
			tl := logs[r.Txn]
			if tl == nil {
				tl = &txnLog{}
				logs[r.Txn] = tl
				order = append(order, r.Txn)
			}
			tl.updates = append(tl.updates, r)
		case wal.RecCommit:
			if tl := logs[r.Txn]; tl != nil {
				tl.committed = true
			}
		case wal.RecAbort:
			delete(logs, r.Txn)
		case wal.RecCheckpoint:
			// Everything before this point is applied; forget it.
			logs = map[uint64]*txnLog{}
			order = nil
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	for _, txn := range order {
		tl := logs[txn]
		if tl == nil || !tl.committed {
			continue
		}
		for _, r := range tl.updates {
			if err := s.redo(r); err != nil {
				return committed, fmt.Errorf("txn: redo of txn %d: %w", txn, err)
			}
		}
		committed++
	}
	if err := s.fs.Flush(); err != nil {
		return committed, err
	}
	if err := s.log.Reset(); err != nil {
		return committed, err
	}
	return committed, nil
}

// redo re-applies one logged update idempotently.
func (s *Service) redo(r wal.Record) error {
	fid := FileID(r.File)
	switch r.Disk {
	case kindRecord:
		_, err := s.fs.WriteAt(fid, int64(r.Offset), r.Data)
		if errors.Is(err, fileservice.ErrNotFound) {
			return nil // file deleted later; nothing to redo
		}
		return err
	case kindPage:
		err := s.fs.WriteBlockThrough(fid, int(r.Addr), r.Data)
		if errors.Is(err, fileservice.ErrNotFound) {
			return nil
		}
		return err
	case kindSize:
		size := int64(binary.BigEndian.Uint64(r.Data))
		cur, err := s.fs.Size(fid)
		if errors.Is(err, fileservice.ErrNotFound) {
			return nil
		}
		if err != nil {
			return err
		}
		if cur != size {
			return s.fs.Truncate(fid, size)
		}
		return nil
	case kindShadow:
		oldDisk := binary.BigEndian.Uint16(r.Data)
		oldAddr := r.Offset
		blk := int(r.Addr)
		curDisk, curAddr, err := s.fs.BlockLocation(fid, blk)
		if errors.Is(err, fileservice.ErrNotFound) || errors.Is(err, fileservice.ErrBadRequest) {
			return nil
		}
		if err != nil {
			return err
		}
		if curDisk != oldDisk || curAddr != oldAddr {
			return nil // swap already applied before the crash
		}
		staged, err := s.fs.DiskServer(int(oldDisk)).Get(int(oldAddr),
			fileservice.FragmentsPerBlock, diskservice.GetOptions{FromStable: true})
		if err != nil {
			return err
		}
		newAddr, err := s.fs.DiskServer(int(oldDisk)).AllocateBlocks(1)
		if err != nil {
			return err
		}
		if err := s.fs.DiskServer(int(oldDisk)).Put(newAddr, staged, diskservice.PutOptions{}); err != nil {
			return err
		}
		return s.fs.ReplaceBlockDescriptor(fid, blk, fit.Extent{
			Disk: oldDisk, Addr: uint32(newAddr), Count: 1,
		})
	default:
		return fmt.Errorf("txn: unknown update kind %d", r.Disk)
	}
}
