package txn

import (
	"testing"
	"time"

	"repro/internal/fit"
	"repro/internal/lock"
)

// TestAdaptiveDefaultLockLevel verifies §7's "exploits the knowledge of how
// frequently a file is used": rarely-opened files default to coarse (file)
// locking, hot files to fine (record) locking.
func TestAdaptiveDefaultLockLevel(t *testing.T) {
	r := newRig(t, func(c *Config) { c.AdaptiveDefault = true })
	// Create a file with no recorded lock level.
	id, fid := r.beginWithFile(fit.LockNone)
	if _, err := r.svc.PWrite(id, fid, 0, make([]byte, 64*1024)); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(id); err != nil {
		t.Fatal(err)
	}
	// Clear the recorded level so the adaptive default applies.
	if err := r.fs.SetLocking(fid, fit.LockNone); err != nil {
		t.Fatal(err)
	}

	levelOfOpen := func() fit.LockLevel {
		t.Helper()
		tid, err := r.svc.Begin(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.svc.Open(tid, fid, fit.LockNone); err != nil {
			t.Fatal(err)
		}
		tt, err := r.svc.get(tid)
		if err != nil {
			t.Fatal(err)
		}
		f, err := tt.file(fid)
		if err != nil {
			t.Fatal(err)
		}
		level := f.level
		if err := r.svc.Abort(tid); err != nil {
			t.Fatal(err)
		}
		return level
	}
	// First opens: cold file -> file level.
	if got := levelOfOpen(); got != fit.LockFile {
		t.Fatalf("cold open level = %v, want file", got)
	}
	// A few more opens: warm -> page.
	var got fit.LockLevel
	for i := 0; i < 2; i++ {
		got = levelOfOpen()
	}
	if got != fit.LockPage {
		t.Fatalf("warm open level = %v, want page", got)
	}
	// Many opens: hot -> record.
	for i := 0; i < 6; i++ {
		got = levelOfOpen()
	}
	if got != fit.LockRecord {
		t.Fatalf("hot open level = %v, want record", got)
	}
}

// TestMixedLevelsThroughTxnService exercises §6.1's deferred relaxation end
// to end: two transactions lock one file at different granularities, with
// byte-range conflicts honoured.
func TestMixedLevelsThroughTxnService(t *testing.T) {
	r := newRig(t, func(c *Config) { c.AllowMixedLevels = true })
	id, fid := r.beginWithFile(fit.LockRecord)
	if _, err := r.svc.PWrite(id, fid, 0, make([]byte, 3*8192)); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(id); err != nil {
		t.Fatal(err)
	}
	// Txn A record-locks bytes [0, 64); txn B page-locks page 2 — disjoint,
	// both proceed despite different levels.
	a, err := r.svc.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.svc.Begin(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.svc.Open(a, fid, fit.LockRecord); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.Open(b, fid, fit.LockPage); err != nil {
		t.Fatalf("second level rejected despite relaxation: %v", err)
	}
	if _, err := r.svc.PWrite(a, fid, 0, []byte("recwrite")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.svc.PWrite(b, fid, 2*8192, []byte("pagewrite")); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(a); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(b); err != nil {
		t.Fatal(err)
	}
	got, err := r.fs.ReadAt(fid, 0, 8)
	if err != nil || string(got) != "recwrite" {
		t.Fatalf("record write = %q, %v", got, err)
	}
	got, err = r.fs.ReadAt(fid, 2*8192, 9)
	if err != nil || string(got) != "pagewrite" {
		t.Fatalf("page write = %q, %v", got, err)
	}
}

// TestMixedLevelsConflictAcrossGranularities: a page lock must block a
// record write inside that page when the relaxation is on.
func TestMixedLevelsConflictAcrossGranularities(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.AllowMixedLevels = true
		c.LT = 30 * time.Millisecond
		c.MaxRenewals = 1
	})
	sw := r.svc.Locks().StartSweeper(10 * time.Millisecond)
	defer sw.Close()
	id, fid := r.beginWithFile(fit.LockPage)
	if _, err := r.svc.PWrite(id, fid, 0, make([]byte, 8192)); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(id); err != nil {
		t.Fatal(err)
	}
	// A holds page 0 with IWrite.
	a, err := r.svc.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.svc.Open(a, fid, fit.LockPage); err != nil {
		t.Fatal(err)
	}
	if _, err := r.svc.PWrite(a, fid, 0, []byte("heldpage")); err != nil {
		t.Fatal(err)
	}
	// B tries a record write inside page 0: must not be granted immediately.
	ok, err := r.svc.Locks().TryAcquire(999, 0, lock.Record,
		lock.ItemID{File: uint64(fid), Offset: 100, Length: 8}, lock.IWrite)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("record lock granted inside an IWrite-locked page (relaxation must still conflict)")
	}
	if err := r.svc.End(a); err != nil {
		t.Fatal(err)
	}
}

// TestCommitSurvivesLogOverflowMidAppend forces a single commit whose
// records exceed the remaining log space: writeCommitRecords must truncate
// the (fully applied) log and retry rather than fail.
func TestCommitSurvivesLogOverflowMidAppend(t *testing.T) {
	r := newRig(t)
	// Shrink the effective log: fill most of it with committed small txns
	// until the next page-sized commit cannot fit.
	id, fid := r.beginWithFile(fit.LockPage)
	if _, err := r.svc.PWrite(id, fid, 0, make([]byte, 4*8192)); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(id); err != nil {
		t.Fatal(err)
	}
	// 256-fragment log = 512 KB; each page commit logs ~8.3 KB. Run enough
	// commits to wrap the log several times; every one must succeed.
	payload := make([]byte, 8192)
	for i := 0; i < 80; i++ {
		tx, err := r.svc.Begin(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.svc.Open(tx, fid, fit.LockPage); err != nil {
			t.Fatal(err)
		}
		payload[0] = byte(i)
		if _, err := r.svc.PWrite(tx, fid, int64(i%4)*8192, payload); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if err := r.svc.End(tx); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	got, err := r.fs.ReadAt(fid, 3*8192, 1)
	if err != nil || got[0] != 79 {
		t.Fatalf("final content = %v, %v", got, err)
	}
}

// TestCommitFailsCleanlyWhenDiskFull: a transaction that cannot allocate
// space ends with an error, not corruption, and the service stays usable.
func TestCommitFailsCleanlyWhenDiskFull(t *testing.T) {
	r := newRig(t)
	// Exhaust the disk with one giant basic file (64 MB disk).
	big, err := r.fs.Create(fit.Attributes{})
	if err != nil {
		t.Fatal(err)
	}
	for off := int64(0); ; off += 1 << 20 {
		if _, err := r.fs.WriteAt(big, off, make([]byte, 1<<20)); err != nil {
			break // disk full
		}
	}
	// A transaction trying to create and fill a new file must fail but not
	// wedge the service.
	id, err := r.svc.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	fid, err := r.svc.Create(id, fit.Attributes{Locking: fit.LockPage})
	if err != nil {
		// Even the create may fail — that is a clean outcome too.
		return
	}
	if _, err := r.svc.PWrite(id, fid, 0, make([]byte, 1<<20)); err == nil {
		err = r.svc.End(id)
		if err == nil {
			t.Log("commit found space (reserved block); acceptable")
		}
	} else {
		_ = r.svc.Abort(id)
	}
	// The service still works: free space by deleting the big file, then a
	// fresh transaction succeeds.
	if err := r.fs.Delete(big); err != nil {
		t.Fatal(err)
	}
	id2, err := r.svc.Begin(2)
	if err != nil {
		t.Fatal(err)
	}
	fid2, err := r.svc.Create(id2, fit.Attributes{Locking: fit.LockPage})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.svc.PWrite(id2, fid2, 0, []byte("recovered")); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(id2); err != nil {
		t.Fatalf("post-recovery commit: %v", err)
	}
}
