// Package txn implements the RHODOS transaction service (§6): file
// operations with transaction semantics — tbegin, tcreate, topen, tdelete,
// tread, tpread, twrite, tpwrite, tget-attribute, tlseek, tclose, tend and
// tabort — on top of the basic file service.
//
// Concurrency control is strict two-phase locking (§6.2) with the RO/IR/IW
// locks of Table 1 at record, page or file granularity (§6.1), provided by
// package lock, including its LT-timeout deadlock resolution (§6.4).
// During the first phase every update is recorded as a tentative data item
// in the transaction's intentions list (package intentions) — invisible to
// other transactions. At commit the intention flag moves to commit, the
// commit record reaches stable storage through the write-ahead log, and the
// changes are made permanent with the technique of §6.7: write-ahead logging
// when the file's blocks are contiguous (and always for record-mode
// intentions), the shadow-page technique otherwise. Locks are released only
// after the changes are permanent.
//
// The §6.6 stable-storage force is paid per *batch* of commits, not per
// commit (group commit; see DESIGN.md's commit-pipeline section and E19).
// End appends the transaction's commit records to the log, then joins the
// current batch — or opens one and becomes its leader. The leader waits out
// any in-flight sync (the next batch accumulates behind an in-flight
// barrier — that pipelining is where batching comes from), issues one
// wal.Sync for every member, and wakes the followers; each member then
// applies its own intentions and releases its own locks. Configure with
// Config.Group (GroupCommitConfig); Disable restores one sync per commit.
//
// Concurrency and ownership contract: a Service is safe for concurrent use
// by any number of goroutines, but a single transaction is owned by one
// goroutine at a time — its operations must not race. Commit batching is
// internal: callers never share transaction state across End calls; a
// parked follower owns nothing until its leader's barrier resolves. If the
// leader dies at the barrier (crash injection), followers return
// ErrCommitInterrupted — the outcome is unknown until Recover replays the
// log, and the follower keeps its locks and log records until then. Log
// truncation runs only at quiescence: no open batch, no sync in flight,
// and every synced member done applying, so a checkpoint can never discard
// a commit record a parked committer still needs.
package txn

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/diskservice"
	"repro/internal/fault"
	"repro/internal/fileservice"
	"repro/internal/fit"
	"repro/internal/intentions"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/simclock"
	"repro/internal/wal"
)

// TxnID identifies a transaction.
type TxnID = lock.TxnID

// FileID is a file system name, as in the file service.
type FileID = fileservice.FileID

// update-record kinds packed into wal.Record.Disk.
const (
	kindRecord = 0 // byte-range after-image at Offset
	kindPage   = 1 // whole-block after-image of block Addr
	kindShadow = 2 // shadow swap: block Addr, staged at stable Offset, Data=[oldDisk:2]
	kindSize   = 3 // file size: Data = 8-byte big-endian size
)

// Errors.
var (
	// ErrNoTxn reports an unknown or finished transaction descriptor.
	ErrNoTxn = errors.New("txn: no such transaction")
	// ErrAborted reports that the transaction was aborted (possibly by the
	// deadlock timeout) and can no longer be used.
	ErrAborted = errors.New("txn: transaction aborted")
	// ErrNotOpenInTxn reports an operation on a file the transaction has not
	// opened with topen/tcreate.
	ErrNotOpenInTxn = errors.New("txn: file not open in this transaction")
	// ErrBadWhence reports an invalid tlseek whence.
	ErrBadWhence = errors.New("txn: bad whence")
)

// Whence values for LSeek.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Config configures a Service.
type Config struct {
	// Files is the underlying basic file service. Required.
	Files *fileservice.Service
	// Log is the write-ahead log on stable storage. Required.
	Log *wal.Log
	// Locks is the lock manager; one is created from LT/MaxRenewals/Clock if
	// nil.
	Locks *lock.Manager
	// LT and MaxRenewals configure the created lock manager (§6.4).
	LT          time.Duration
	MaxRenewals int
	// Clock supplies time for lock timeouts.
	Clock simclock.Clock
	// Metrics receives transaction counters. Optional.
	Metrics *metrics.Set
	// DefaultLevel is the lock level used when a file's attributes specify
	// none; defaults to page level.
	DefaultLevel fit.LockLevel
	// AdaptiveDefault, when set, picks the default lock level from how
	// frequently the file is used (§7: "to support default level of locking
	// it exploits the knowledge of how frequently a file is used"): files
	// opened often default to record level (maximize concurrency), rarely
	// used ones to file level (minimize lock overhead), the rest to page.
	AdaptiveDefault bool
	// AllowMixedLevels is forwarded to a lock manager the service creates
	// itself (§6.1's deferred relaxation).
	AllowMixedLevels bool
	// ForceTechnique, when nonzero, overrides the §6.7 contiguity rule and
	// commits every page intention with the given technique (ablation E8).
	ForceTechnique intentions.Technique
	// Fault is the fault injector consulted at the commit sequence's crash
	// points. Optional; nil injects nothing.
	Fault *fault.Injector
	// Obs receives transaction-layer spans and latency observations.
	// Optional; nil disables tracing.
	Obs *obs.Recorder
	// Group configures group commit: batching concurrent End() callers'
	// commit records under one log sync. The zero value enables it with
	// defaults; set Group.Disable for the one-sync-per-commit baseline.
	Group GroupCommitConfig
}

// txnFile is a transaction's view of one open file.
type txnFile struct {
	id     FileID
	level  fit.LockLevel
	cursor int64
	// size is the transaction's tentative file size.
	size int64
	// baseBlocks is the file's block count at first touch; blocks at or
	// beyond it are new in this transaction and always commit via WAL.
	baseBlocks int
}

// txnState is one live transaction.
type txnState struct {
	id  TxnID
	pid int
	// parent is the enclosing transaction for subtransactions (nil for
	// top-level); lockID is the top-level ancestor's id, the identity under
	// which the whole family holds its locks.
	parent *txnState
	lockID TxnID

	mu       sync.Mutex
	files    map[FileID]*txnFile
	list     *intentions.List
	created  []FileID
	deleted  []FileID
	released map[FileID]bool
	// openedSelf marks files this transaction fs.Open-ed itself (as opposed
	// to views inherited from an ancestor).
	openedSelf map[FileID]bool
	children   int
	kids       []*txnState
	done       bool
}

// Service is the transaction service. It is safe for concurrent use; each
// individual transaction must be driven by one goroutine at a time.
type Service struct {
	fs       *fileservice.Service
	log      *wal.Log
	locks    *lock.Manager
	ownLocks bool
	met      *metrics.Set
	defLevel fit.LockLevel
	adaptive bool
	force    intentions.Technique

	mu     sync.Mutex
	txns   map[TxnID]*txnState
	nextID TxnID
	// fileUse counts transactions holding each file open, for flipping the
	// file's service classification (§2.2).
	fileUse map[FileID]int
	// openFreq counts topen calls per file, feeding the adaptive default
	// lock level (§7).
	openFreq map[FileID]int
	// uncommitted maps files created by a still-running transaction to that
	// transaction; other transactions may not open them.
	uncommitted map[FileID]TxnID

	// gc is the group-commit coordinator: it serializes commit-record
	// appends, batches concurrent committers under one log sync, and guards
	// log truncation (group.go).
	gc *groupCommit

	// crashAfterLog is a test hook: End stops right after the commit record
	// is durable, as if the machine crashed before applying intentions.
	crashAfterLog bool

	fault  *fault.Injector
	obsRec *obs.Recorder
}

// New creates a transaction service.
func New(cfg Config) (*Service, error) {
	if cfg.Files == nil {
		return nil, errors.New("txn: nil file service")
	}
	if cfg.Log == nil {
		return nil, errors.New("txn: nil log")
	}
	level := cfg.DefaultLevel
	if level == fit.LockNone {
		level = fit.LockPage
	}
	s := &Service{
		fs:          cfg.Files,
		log:         cfg.Log,
		met:         cfg.Metrics,
		defLevel:    level,
		adaptive:    cfg.AdaptiveDefault,
		force:       cfg.ForceTechnique,
		fault:       cfg.Fault,
		obsRec:      cfg.Obs,
		txns:        make(map[TxnID]*txnState),
		fileUse:     make(map[FileID]int),
		openFreq:    make(map[FileID]int),
		uncommitted: make(map[FileID]TxnID),
	}
	if cfg.Locks != nil {
		s.locks = cfg.Locks
	} else {
		clk := cfg.Clock
		if clk == nil {
			clk = &simclock.Wall{}
		}
		s.locks = lock.New(lock.Config{
			Clock: clk, LT: cfg.LT, MaxRenewals: cfg.MaxRenewals, Metrics: cfg.Metrics,
			AllowMixedLevels: cfg.AllowMixedLevels, Obs: cfg.Obs,
		})
		s.ownLocks = true
	}
	s.gc = newGroupCommit(s, cfg.Group)
	return s, nil
}

// Locks exposes the lock manager (for sweepers and experiments).
func (s *Service) Locks() *lock.Manager { return s.locks }

// Close shuts down a lock manager the service created itself.
func (s *Service) Close() {
	if s.ownLocks {
		s.locks.Close()
	}
}

// Begin starts a transaction (tbegin) on behalf of process pid and returns
// its transaction descriptor.
func (s *Service) Begin(pid int) (TxnID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := s.nextID
	s.txns[id] = &txnState{
		id: id, pid: pid, lockID: id,
		files:      make(map[FileID]*txnFile),
		openedSelf: make(map[FileID]bool),
		list:       intentions.NewList(uint64(id)),
	}
	return id, nil
}

// get returns the live transaction or an error.
func (s *Service) get(id TxnID) (*txnState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoTxn, id)
	}
	return t, nil
}

// lockErr converts a lock-manager failure: a broken transaction is aborted
// on the spot (§6.4: "its lock is broken and the transaction is aborted").
// Locks belong to the top-level ancestor, so breakage dooms the whole
// family.
func (s *Service) lockErr(t *txnState, err error) error {
	if errors.Is(err, lock.ErrTxnBroken) {
		root := t
		for root.parent != nil {
			root = root.parent
		}
		s.abort(root)
		return fmt.Errorf("%w: deadlock timeout", ErrAborted)
	}
	return err
}

// lockLevel maps a fit lock level to the lock manager's Level.
func lockLevel(l fit.LockLevel) lock.Level {
	switch l {
	case fit.LockRecord:
		return lock.Record
	case fit.LockFile:
		return lock.File
	default:
		return lock.Page
	}
}

// Create creates a new file under transaction semantics (tcreate), holding
// an exclusive file lock until the transaction ends. On abort the file is
// removed.
func (s *Service) Create(id TxnID, attr fit.Attributes) (FileID, error) {
	t, err := s.get(id)
	if err != nil {
		return 0, err
	}
	attr.Service = fit.ServiceTransaction
	if attr.Locking == fit.LockNone {
		attr.Locking = s.defLevel
	}
	fid, err := s.fs.Create(attr)
	if err != nil {
		return 0, err
	}
	if err := s.fs.Open(fid); err != nil {
		return 0, err
	}
	t.mu.Lock()
	t.files[fid] = &txnFile{id: fid, level: attr.Locking, baseBlocks: 0}
	t.created = append(t.created, fid)
	if t.openedSelf == nil {
		t.openedSelf = make(map[FileID]bool)
	}
	t.openedSelf[fid] = true
	t.mu.Unlock()
	// The file is invisible to other transactions until this one commits;
	// no lock is needed because Open refuses uncommitted files.
	s.mu.Lock()
	s.uncommitted[fid] = id
	s.mu.Unlock()
	s.noteOpen(fid)
	return fid, nil
}

// Open opens an existing file for the transaction (topen). level selects
// the locking granularity; LockNone uses the file's recorded level, or the
// service default.
func (s *Service) Open(id TxnID, fid FileID, level fit.LockLevel) error {
	t, err := s.get(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if owner, ok := s.uncommitted[fid]; ok && !s.sameFamily(owner, id) {
		s.mu.Unlock()
		return fmt.Errorf("%w: id %d (uncommitted)", fileservice.ErrNotFound, fid)
	}
	s.mu.Unlock()
	// A subtransaction opening a file an ancestor already holds inherits the
	// ancestor's view (and its fs-level open).
	if f := t.inheritedFile(fid); f != nil {
		if level != fit.LockNone {
			f.level = level
		}
		t.mu.Lock()
		t.files[fid] = f
		t.mu.Unlock()
		return nil
	}
	attr, err := s.fs.Attributes(fid)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.openFreq[fid]++
	freq := s.openFreq[fid]
	s.mu.Unlock()
	if level == fit.LockNone {
		level = attr.Locking
	}
	if level == fit.LockNone {
		if s.adaptive {
			level = adaptiveLevel(freq)
		} else {
			level = s.defLevel
		}
	}
	if err := s.fs.Open(fid); err != nil {
		return err
	}
	blocks, err := s.fs.BlockCount(fid)
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.files[fid] = &txnFile{
		id: fid, level: level,
		size:       int64(attr.Size),
		baseBlocks: blocks,
	}
	if t.openedSelf == nil {
		t.openedSelf = make(map[FileID]bool)
	}
	t.openedSelf[fid] = true
	t.mu.Unlock()
	s.noteOpen(fid)
	return nil
}

// adaptiveLevel maps a file's open frequency to a default lock level (§7):
// hot files get fine granularity for concurrency, cold files get coarse
// granularity for low locking overhead.
func adaptiveLevel(openCount int) fit.LockLevel {
	switch {
	case openCount >= 8:
		return fit.LockRecord
	case openCount >= 3:
		return fit.LockPage
	default:
		return fit.LockFile
	}
}

// noteOpen flips the file to transaction-service semantics while any
// transaction has it open (§2.2's by-use classification).
func (s *Service) noteOpen(fid FileID) {
	s.mu.Lock()
	s.fileUse[fid]++
	first := s.fileUse[fid] == 1
	s.mu.Unlock()
	if first {
		_ = s.fs.SetService(fid, fit.ServiceTransaction)
	}
}

func (s *Service) noteClose(fid FileID) {
	s.mu.Lock()
	s.fileUse[fid]--
	last := s.fileUse[fid] == 0
	if last {
		delete(s.fileUse, fid)
	}
	s.mu.Unlock()
	if last {
		_ = s.fs.SetService(fid, fit.ServiceBasic)
	}
}

// file returns the transaction's view of an open file, inheriting (and
// cloning) the view from an ancestor for subtransactions.
func (t *txnState) file(fid FileID) (*txnFile, error) {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return nil, ErrAborted
	}
	if f, ok := t.files[fid]; ok {
		t.mu.Unlock()
		return f, nil
	}
	t.mu.Unlock()
	if f := t.inheritedFile(fid); f != nil {
		t.mu.Lock()
		t.files[fid] = f
		t.mu.Unlock()
		return f, nil
	}
	return nil, fmt.Errorf("%w: file %d", ErrNotOpenInTxn, fid)
}

// Delete marks a file for deletion at commit (tdelete), taking an exclusive
// file-level lock. The file must be opened in the transaction first.
func (s *Service) Delete(id TxnID, fid FileID) error {
	t, err := s.get(id)
	if err != nil {
		return err
	}
	f, err := t.file(fid)
	if err != nil {
		return err
	}
	item := lock.ItemID{File: uint64(fid)}
	if err := s.locks.Acquire(t.lockID, t.pid, lockLevel(f.level), fileWideItem(f.level, item), lock.IWrite); err != nil {
		return s.lockErr(t, err)
	}
	t.mu.Lock()
	t.deleted = append(t.deleted, fid)
	t.mu.Unlock()
	return nil
}

// fileWideItem widens an item to cover the whole file at the given level
// (used by tdelete, which must conflict with everything).
func fileWideItem(level fit.LockLevel, item lock.ItemID) lock.ItemID {
	// At file level the item is already the whole file. At page/record
	// levels a whole-file conflict cannot be expressed as one item without
	// violating the one-level rule, so we lock the file's level-appropriate
	// "everything" item: for record level a maximal range, for page level we
	// settle for page 0 plus relying on commit-time application.
	switch level {
	case fit.LockRecord:
		return lock.ItemID{File: item.File, Offset: 0, Length: ^uint64(0)}
	default:
		return item
	}
}

// lockRangeLocked acquires the locks an access of [off, off+n) needs, per
// the file's granularity.
func (s *Service) lockRange(ctx context.Context, t *txnState, f *txnFile, off int64, n int, mode lock.Mode) error {
	if n <= 0 {
		return nil
	}
	switch f.level {
	case fit.LockFile:
		return s.locks.AcquireCtx(ctx, t.lockID, t.pid, lock.File, lock.ItemID{File: uint64(f.id)}, mode)
	case fit.LockRecord:
		return s.locks.AcquireCtx(ctx, t.lockID, t.pid, lock.Record,
			lock.ItemID{File: uint64(f.id), Offset: uint64(off), Length: uint64(n)}, mode)
	default: // page
		first := off / fileservice.BlockSize
		last := (off + int64(n) - 1) / fileservice.BlockSize
		for b := first; b <= last; b++ {
			if err := s.locks.AcquireCtx(ctx, t.lockID, t.pid, lock.Page,
				lock.ItemID{File: uint64(f.id), Offset: uint64(b)}, mode); err != nil {
				return err
			}
		}
		return nil
	}
}

// PRead reads n bytes at offset off (tpread). forUpdate takes an Iread lock
// instead of read-only, for data the transaction intends to modify (§6.3).
func (s *Service) PRead(id TxnID, fid FileID, off int64, n int, forUpdate bool) ([]byte, error) {
	return s.PReadCtx(context.Background(), id, fid, off, n, forUpdate)
}

// PReadCtx is PRead carrying a trace context. The transaction layer is an
// entry point when driven directly and interior under an agent, so the
// span roots a new tree if ctx carries none.
func (s *Service) PReadCtx(ctx context.Context, id TxnID, fid FileID, off int64, n int, forUpdate bool) ([]byte, error) {
	ctx, sp := s.obsRec.StartOr(ctx, obs.LayerTxn, "pread")
	sp.SetTxn(uint64(id))
	sp.SetFile(uint64(fid))
	data, err := s.pread(ctx, id, fid, off, n, forUpdate)
	sp.AddBytes(len(data))
	sp.End(err)
	return data, err
}

func (s *Service) pread(ctx context.Context, id TxnID, fid FileID, off int64, n int, forUpdate bool) ([]byte, error) {
	t, err := s.get(id)
	if err != nil {
		return nil, err
	}
	f, err := t.file(fid)
	if err != nil {
		return nil, err
	}
	if off < 0 || n < 0 {
		return nil, fileservice.ErrBadOffset
	}
	t.mu.Lock()
	size := f.size
	t.mu.Unlock()
	if off >= size {
		return nil, nil
	}
	if off+int64(n) > size {
		n = int(size - off)
	}
	mode := lock.ReadOnly
	if forUpdate {
		mode = lock.IRead
	}
	if err := s.lockRange(ctx, t, f, off, n, mode); err != nil {
		return nil, s.lockErr(t, err)
	}
	return s.readView(ctx, t, f, off, n)
}

// readView builds the transaction's view: committed bytes overlaid with
// every ancestor's tentative writes (root first) and then its own.
func (s *Service) readView(ctx context.Context, t *txnState, f *txnFile, off int64, n int) ([]byte, error) {
	buf := make([]byte, n)
	base, err := s.fs.ReadAtCtx(ctx, f.id, off, n)
	if err != nil && !errors.Is(err, fileservice.ErrNotFound) {
		return nil, err
	}
	copy(buf, base)
	for _, list := range t.ancestry() {
		buf = list.Overlay(uint64(f.id), off, buf, fileservice.BlockSize)
	}
	return buf, nil
}

// Read reads n bytes at the cursor (tread), advancing it.
func (s *Service) Read(id TxnID, fid FileID, n int, forUpdate bool) ([]byte, error) {
	t, err := s.get(id)
	if err != nil {
		return nil, err
	}
	f, err := t.file(fid)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	off := f.cursor
	t.mu.Unlock()
	data, err := s.PRead(id, fid, off, n, forUpdate)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	f.cursor = off + int64(len(data))
	t.mu.Unlock()
	return data, nil
}

// PWrite writes data at offset off (tpwrite), recording tentative data items
// in the intentions list; nothing reaches the committed file until tend.
func (s *Service) PWrite(id TxnID, fid FileID, off int64, data []byte) (int, error) {
	return s.PWriteCtx(context.Background(), id, fid, off, data)
}

// PWriteCtx is PWrite carrying a trace context.
func (s *Service) PWriteCtx(ctx context.Context, id TxnID, fid FileID, off int64, data []byte) (int, error) {
	ctx, sp := s.obsRec.StartOr(ctx, obs.LayerTxn, "pwrite")
	sp.SetTxn(uint64(id))
	sp.SetFile(uint64(fid))
	sp.AddBytes(len(data))
	n, err := s.pwrite(ctx, id, fid, off, data)
	sp.End(err)
	return n, err
}

func (s *Service) pwrite(ctx context.Context, id TxnID, fid FileID, off int64, data []byte) (int, error) {
	t, err := s.get(id)
	if err != nil {
		return 0, err
	}
	f, err := t.file(fid)
	if err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fileservice.ErrBadOffset
	}
	if len(data) == 0 {
		return 0, nil
	}
	if err := s.lockRange(ctx, t, f, off, len(data), lock.IWrite); err != nil {
		return 0, s.lockErr(t, err)
	}

	if f.level == fit.LockRecord {
		// Record mode: the tentative data item is the exact byte range.
		if err := t.list.SetIntention(intentions.Record{
			File: uint64(f.id), Kind: intentions.RecordKind,
			Offset: off, Length: len(data), Data: data,
		}); err != nil {
			return 0, err
		}
	} else {
		// Page/file mode: tentative data items are whole pages (§6.7).
		first := off / fileservice.BlockSize
		last := (off + int64(len(data)) - 1) / fileservice.BlockSize
		for b := first; b <= last; b++ {
			page, err := s.tentativePage(ctx, t, f, int(b))
			if err != nil {
				return 0, err
			}
			lo := b * fileservice.BlockSize
			from := lo
			if off > from {
				from = off
			}
			to := lo + fileservice.BlockSize
			if end := off + int64(len(data)); end < to {
				to = end
			}
			copy(page[from-lo:to-lo], data[from-off:to-off])
			if err := t.list.SetIntention(intentions.Record{
				File: uint64(f.id), Kind: intentions.PageKind, Block: int(b), Data: page,
			}); err != nil {
				return 0, err
			}
			if err := s.stageShadow(f, int(b), page); err != nil {
				return 0, err
			}
		}
	}
	t.mu.Lock()
	if end := off + int64(len(data)); end > f.size {
		f.size = end
	}
	t.mu.Unlock()
	return len(data), nil
}

// tentativePage returns the transaction's current view of one whole block,
// including ancestors' tentative data for subtransactions.
func (s *Service) tentativePage(ctx context.Context, t *txnState, f *txnFile, blk int) ([]byte, error) {
	page := make([]byte, fileservice.BlockSize)
	off := int64(blk) * fileservice.BlockSize
	base, err := s.fs.ReadAtCtx(ctx, f.id, off, fileservice.BlockSize)
	if err != nil {
		return nil, err
	}
	copy(page, base)
	for _, list := range t.ancestry() {
		page = list.Overlay(uint64(f.id), off, page, fileservice.BlockSize)
	}
	return page, nil
}

// stageShadow saves a tentative page exclusively on stable storage at the
// block's current address — §4's shadow-page flavour of put-block — so a
// shadow commit after a crash can find the data.
func (s *Service) stageShadow(f *txnFile, blk int, page []byte) error {
	if blk >= f.baseBlocks {
		return nil // new block: no original location yet; commits via WAL
	}
	disk, addr, err := s.fs.BlockLocation(f.id, blk)
	if err != nil {
		return err
	}
	return s.fs.DiskServer(int(disk)).Put(int(addr), page, diskservice.PutOptions{
		Stability: diskservice.StableOnly, WaitStable: true,
	})
}

// Write writes at the cursor (twrite), advancing it.
func (s *Service) Write(id TxnID, fid FileID, data []byte) (int, error) {
	t, err := s.get(id)
	if err != nil {
		return 0, err
	}
	f, err := t.file(fid)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	off := f.cursor
	t.mu.Unlock()
	n, err := s.PWrite(id, fid, off, data)
	if err != nil {
		return n, err
	}
	t.mu.Lock()
	f.cursor = off + int64(n)
	t.mu.Unlock()
	return n, nil
}

// GetAttribute returns the file's attributes as this transaction sees them
// (tget-attribute): the tentative size overlays the committed one.
func (s *Service) GetAttribute(id TxnID, fid FileID) (fit.Attributes, error) {
	t, err := s.get(id)
	if err != nil {
		return fit.Attributes{}, err
	}
	f, err := t.file(fid)
	if err != nil {
		return fit.Attributes{}, err
	}
	attr, err := s.fs.Attributes(fid)
	if err != nil {
		return fit.Attributes{}, err
	}
	t.mu.Lock()
	attr.Size = uint64(f.size)
	t.mu.Unlock()
	return attr, nil
}

// LSeek moves the cursor (tlseek) and returns the new position.
func (s *Service) LSeek(id TxnID, fid FileID, off int64, whence int) (int64, error) {
	t, err := s.get(id)
	if err != nil {
		return 0, err
	}
	f, err := t.file(fid)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var pos int64
	switch whence {
	case SeekSet:
		pos = off
	case SeekCur:
		pos = f.cursor + off
	case SeekEnd:
		pos = f.size + off
	default:
		return 0, fmt.Errorf("%w: %d", ErrBadWhence, whence)
	}
	if pos < 0 {
		return 0, fileservice.ErrBadOffset
	}
	f.cursor = pos
	return pos, nil
}

// CloseFile drops the transaction's cursor on a file (tclose). Locks are
// retained until tend/tabort — strict two-phase locking (§6.2).
func (s *Service) CloseFile(id TxnID, fid FileID) error {
	t, err := s.get(id)
	if err != nil {
		return err
	}
	if _, err := t.file(fid); err != nil {
		return err
	}
	// The view (and its intentions) must survive until commit; only the
	// cursor becomes unusable. We keep the state and simply note the close.
	return nil
}

// Active returns the number of live transactions.
func (s *Service) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.txns)
}
