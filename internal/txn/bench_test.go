package txn

import (
	"testing"

	"repro/internal/device"
	"repro/internal/diskservice"
	"repro/internal/fileservice"
	"repro/internal/fit"
	"repro/internal/stable"
	"repro/internal/wal"
)

// benchRig builds the substrate without a testing.T.
func benchRig(b *testing.B) *Service {
	b.Helper()
	g := device.Geometry{FragmentsPerTrack: 32, Tracks: 1024}
	d, err := device.New(g)
	if err != nil {
		b.Fatal(err)
	}
	sp, _ := device.New(g)
	sm, _ := device.New(g)
	st, err := stable.NewStore(sp, sm)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = st.Close() })
	srv, err := diskservice.Format(diskservice.Config{Disk: d, Stable: st})
	if err != nil {
		b.Fatal(err)
	}
	fs, err := fileservice.New(fileservice.Config{Disks: fileservice.Servers(srv)})
	if err != nil {
		b.Fatal(err)
	}
	lp, _ := device.New(device.Geometry{FragmentsPerTrack: 32, Tracks: 256})
	lm, _ := device.New(device.Geometry{FragmentsPerTrack: 32, Tracks: 256})
	logSt, err := stable.NewStore(lp, lm)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = logSt.Close() })
	start, err := logSt.Allocate(4096)
	if err != nil {
		b.Fatal(err)
	}
	log, err := wal.Open(logSt, start, 4096)
	if err != nil {
		b.Fatal(err)
	}
	svc, err := New(Config{Files: fs, Log: log})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(svc.Close)
	return svc
}

// benchFile creates a committed file of size bytes at the given level.
func benchFile(b *testing.B, svc *Service, level fit.LockLevel, size int) FileID {
	b.Helper()
	id, err := svc.Begin(0)
	if err != nil {
		b.Fatal(err)
	}
	fid, err := svc.Create(id, fit.Attributes{Locking: level})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := svc.PWrite(id, fid, 0, make([]byte, size)); err != nil {
		b.Fatal(err)
	}
	if err := svc.End(id); err != nil {
		b.Fatal(err)
	}
	return fid
}

func BenchmarkCommitRecordUpdate(b *testing.B) {
	svc := benchRig(b)
	fid := benchFile(b, svc, fit.LockRecord, 64*1024)
	payload := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := svc.Begin(1)
		if err != nil {
			b.Fatal(err)
		}
		if err := svc.Open(id, fid, fit.LockRecord); err != nil {
			b.Fatal(err)
		}
		if _, err := svc.PWrite(id, fid, int64((i%100)*128), payload); err != nil {
			b.Fatal(err)
		}
		if err := svc.End(id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCommitPageUpdate(b *testing.B) {
	svc := benchRig(b)
	fid := benchFile(b, svc, fit.LockPage, 32*fileservice.BlockSize)
	payload := make([]byte, fileservice.BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := svc.Begin(1)
		if err != nil {
			b.Fatal(err)
		}
		if err := svc.Open(id, fid, fit.LockPage); err != nil {
			b.Fatal(err)
		}
		if _, err := svc.PWrite(id, fid, int64((i%32))*fileservice.BlockSize, payload); err != nil {
			b.Fatal(err)
		}
		if err := svc.End(id); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(fileservice.BlockSize)
}

func BenchmarkReadInTxn(b *testing.B) {
	svc := benchRig(b)
	fid := benchFile(b, svc, fit.LockRecord, 64*1024)
	id, err := svc.Begin(1)
	if err != nil {
		b.Fatal(err)
	}
	if err := svc.Open(id, fid, fit.LockRecord); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.PRead(id, fid, int64((i%500)*128), 128, false); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_ = svc.End(id)
}
