package txn

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/fault"
	"repro/internal/fit"
	"repro/internal/metrics"
	"repro/internal/stable"
)

// startTxns begins W transactions, each with its own record-locked file and
// a distinct payload, ready for the concurrent End calls under test.
func startTxns(r *rig, w int) (ids []TxnID, fids []FileID, payloads [][]byte) {
	for i := 0; i < w; i++ {
		id, fid := r.beginWithFile(fit.LockRecord)
		ids = append(ids, id)
		fids = append(fids, fid)
		payloads = append(payloads, []byte(fmt.Sprintf("group-commit payload %d", i)))
	}
	return ids, fids, payloads
}

func TestGroupCommitBatchesConcurrentCommits(t *testing.T) {
	inj := fault.NewInjector(1)
	r := newRig(t, func(c *Config) { c.Fault = inj })
	const W = 8
	ids, fids, payloads := startTxns(r, W)
	// Hold the first leader just before its sync: every other committer
	// appends during the delay and piles into the next batch, so the run
	// deterministically forms at least one multi-member batch.
	inj.Arm(PtGroupBeforeSync, fault.Action{Kind: fault.KindDelay, Delay: 50 * time.Millisecond})

	start := make(chan struct{})
	errs := make([]error, W)
	var wg sync.WaitGroup
	for i := 0; i < W; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			if _, err := r.svc.PWrite(ids[i], fids[i], 0, payloads[i]); err != nil {
				errs[i] = err
				return
			}
			errs[i] = r.svc.End(ids[i])
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if syncs := r.met.Get(metrics.WalSyncs); syncs >= W {
		t.Fatalf("group commit issued %d syncs for %d commits; want fewer barriers than commits", syncs, W)
	}
	if b := r.met.Get(metrics.TxnGroupBatches); b < 1 {
		t.Fatalf("no group batch recorded (batches=%d)", b)
	}
	if waits := r.met.Get(metrics.TxnGroupWaits); waits < 1 {
		t.Fatalf("no committer ever parked as a follower (waits=%d)", waits)
	}

	// Every commit must be durable: crash, recover, read back.
	inj.DisarmAll()
	r.crash()
	if _, err := r.svc.Recover(); err != nil {
		t.Fatal(err)
	}
	for i, fid := range fids {
		got, err := r.fs.ReadAt(fid, 0, len(payloads[i]))
		if err != nil || !bytes.Equal(got, payloads[i]) {
			t.Fatalf("file %d after recovery: %q, %v; want %q", fid, got, err, payloads[i])
		}
	}
}

func TestGroupCommitDisabledOneSyncPerCommit(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Group.Disable = true })
	const N = 4
	base := r.met.Get(metrics.WalSyncs)
	for i := 0; i < N; i++ {
		id, fid := r.beginWithFile(fit.LockRecord)
		if _, err := r.svc.PWrite(id, fid, 0, []byte("solo")); err != nil {
			t.Fatal(err)
		}
		if err := r.svc.End(id); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.met.Get(metrics.WalSyncs) - base; got != N {
		t.Fatalf("disabled group commit issued %d syncs for %d commits; want exactly one barrier each", got, N)
	}
	if b := r.met.Get(metrics.TxnGroupBatches); b != 0 {
		t.Fatalf("baseline recorded %d group batches; want 0", b)
	}
}

// TestTruncationWaitsForUnapplied pins the batch-truncation window: the log
// must not be truncated while any batched commit's records are durable but
// its intentions are not yet applied in place (or its committer was left
// interrupted by a crashed leader) — truncating then would lose the only
// copy redo depends on.
func TestTruncationWaitsForUnapplied(t *testing.T) {
	r := newRig(t)
	// Another transaction somewhere in the pipeline: committed, not applied.
	r.svc.gc.mu.Lock()
	r.svc.gc.unapplied++
	r.svc.gc.mu.Unlock()

	// Push the log past half capacity so End wants to truncate.
	id, fid := r.beginWithFile(fit.LockPage)
	big := bytes.Repeat([]byte{0xAB}, 300<<10) // capacity 512 KB, threshold 256 KB
	if _, err := r.svc.PWrite(id, fid, 0, big); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(id); err != nil {
		t.Fatal(err)
	}
	if r.log.AppendedBytes() == 0 {
		t.Fatal("log truncated while a batched commit was still unapplied")
	}

	// Once the straggler applies, truncation proceeds.
	r.svc.gc.applied()
	r.svc.maybeTruncateLog()
	if got := r.log.AppendedBytes(); got != 0 {
		t.Fatalf("quiescent log not truncated: %d bytes still appended", got)
	}
}

// TestGroupLeaderCrashAfterSync kills a batch leader right after its Sync
// succeeded, before any follower is woken. Followers observe
// ErrCommitInterrupted — the outcome is unknown to them — yet recovery must
// find the entire batch durable, because the barrier completed.
func TestGroupLeaderCrashAfterSync(t *testing.T) {
	inj := fault.NewInjector(2)
	withFault := func(c *Config) { c.Fault = inj }
	r := newRig(t, withFault)
	const W = 4
	ids, fids, payloads := startTxns(r, W)
	// Delay the first leader so the remaining committers form one batch
	// behind it, then crash that batch's leader after its sync (After: 1
	// skips the first leader's own post-sync hit).
	inj.Arm(PtGroupBeforeSync, fault.Action{Kind: fault.KindDelay, Delay: 50 * time.Millisecond})
	inj.Arm(PtGroupLeaderSynced, fault.Action{Kind: fault.KindCrash, After: 1})

	start := make(chan struct{})
	errs := make([]error, W)
	crashes := make([]*fault.Crash, W)
	var wg sync.WaitGroup
	for i := 0; i < W; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			crashes[i], errs[i] = fault.Run(func() error {
				if _, err := r.svc.PWrite(ids[i], fids[i], 0, payloads[i]); err != nil {
					return err
				}
				return r.svc.End(ids[i])
			})
		}(i)
	}
	close(start)
	wg.Wait()

	nCrashed, nInterrupted := 0, 0
	for i := range errs {
		switch {
		case crashes[i] != nil:
			nCrashed++
		case errs[i] == nil:
		case errors.Is(errs[i], ErrCommitInterrupted):
			nInterrupted++
		default:
			t.Fatalf("worker %d: unexpected error %v", i, errs[i])
		}
	}
	if nCrashed != 1 {
		t.Fatalf("crashed workers = %d; want exactly the batch leader", nCrashed)
	}
	if nInterrupted < 1 {
		t.Fatalf("no follower saw ErrCommitInterrupted (interrupted=%d)", nInterrupted)
	}

	// The leader synced before dying: after recovery every member of every
	// batch — crashed, interrupted, and successful alike — is durable.
	inj.DisarmAll()
	r.crash(withFault)
	if _, err := r.svc.Recover(); err != nil {
		t.Fatal(err)
	}
	for i, fid := range fids {
		got, err := r.fs.ReadAt(fid, 0, len(payloads[i]))
		if err != nil || !bytes.Equal(got, payloads[i]) {
			t.Fatalf("file %d after leader crash + recovery: %q, %v; want %q", fid, got, err, payloads[i])
		}
	}
}

// TestGroupSyncFailureFailsAllPendingBatches pins the multi-batch failure
// window: while leader A's sync is in flight, a full batch B and an open
// batch C both form behind the barrier. When A's sync fails, DropUnsynced
// discards B's and C's records along with A's, so every member of every
// batch must see the failure — in particular B, which is neither the
// failing batch nor the open cur, must not be acknowledged with a nil
// commit (its records are gone; a nil return would be an ack with no
// durable WAL record behind it).
func TestGroupSyncFailureFailsAllPendingBatches(t *testing.T) {
	inj := fault.NewInjector(3)
	r := newRig(t, func(c *Config) {
		c.Fault = inj
		c.Group.MaxBatch = 2
	})
	const W = 4
	ids, fids, payloads := startTxns(r, W)

	// Hold leader A just before its sync so the other committers pile up
	// behind the in-flight barrier, then fail that one sync at the stable
	// store under the log.
	inj.Arm(PtGroupBeforeSync, fault.Action{Kind: fault.KindDelay, Delay: 500 * time.Millisecond})
	inj.Arm(stable.PtWritePrimary, fault.Action{Kind: fault.KindError, Err: device.ErrFailed})

	errs := make([]error, W)
	var wg sync.WaitGroup
	commit := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.svc.PWrite(ids[i], fids[i], 0, payloads[i]); err != nil {
				errs[i] = err
				return
			}
			errs[i] = r.svc.End(ids[i])
		}()
	}
	waitGC := func(what string, cond func() bool) {
		t.Helper()
		for deadline := time.Now().Add(5 * time.Second); ; {
			r.svc.gc.mu.Lock()
			ok := cond()
			r.svc.gc.mu.Unlock()
			if ok {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}

	commit(0)
	waitGC("leader A in flight", func() bool { return r.svc.gc.syncing && r.svc.gc.cur == nil })
	commit(1)
	commit(2)
	waitGC("batch B full", func() bool { return r.svc.gc.cur != nil && r.svc.gc.cur.size == 2 })
	r.svc.gc.mu.Lock()
	b := r.svc.gc.cur
	r.svc.gc.mu.Unlock()
	commit(3)
	waitGC("batch C open behind full B", func() bool { return r.svc.gc.cur != nil && r.svc.gc.cur != b })
	wg.Wait()

	for i, err := range errs {
		if err == nil {
			t.Fatalf("worker %d acknowledged as committed after its batch's records were dropped", i)
		}
	}
	// Every failed commit retired its unapplied slot, so the pipeline is
	// quiescent again.
	r.svc.gc.mu.Lock()
	unapplied := r.svc.gc.unapplied
	r.svc.gc.mu.Unlock()
	if unapplied != 0 {
		t.Fatalf("unapplied = %d after all batches failed; want 0", unapplied)
	}
	// No acknowledged commit means nothing durable: crash, recover, verify.
	inj.DisarmAll()
	r.crash()
	if n, err := r.svc.Recover(); err != nil || n != 0 {
		t.Fatalf("Recover = %d, %v; want 0 committed transactions", n, err)
	}
	for i, fid := range fids {
		if got, err := r.fs.ReadAt(fid, 0, len(payloads[i])); err == nil && len(got) > 0 {
			t.Fatalf("file %d holds %q after a failed group sync; want nothing durable", fid, got)
		}
	}
	// The service survives the failure: a fresh commit goes through.
	id, fid := r.beginWithFile(fit.LockRecord)
	want := []byte("after failed batch")
	if _, err := r.svc.PWrite(id, fid, 0, want); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(id); err != nil {
		t.Fatalf("commit after failed group sync: %v", err)
	}
	got, err := r.fs.ReadAt(fid, 0, len(want))
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("post-failure commit = %q, %v; want %q", got, err, want)
	}
}

// TestGroupCommitBarrier pins the replication-barrier hook's contract: it
// runs after each successful sync and before the batch is acknowledged, and
// a barrier failure surfaces as ErrCommitInterrupted WITHOUT dropping the
// batch's records — they are durable, so recovery resolves the commit.
func TestGroupCommitBarrier(t *testing.T) {
	for _, solo := range []bool{false, true} {
		name := "grouped"
		if solo {
			name = "solo"
		}
		t.Run(name, func(t *testing.T) {
			var calls atomic.Int64
			var failBarrier atomic.Bool
			withBarrier := func(c *Config) {
				c.Group.Disable = solo
				c.Group.Barrier = func() error {
					calls.Add(1)
					if failBarrier.Load() {
						return errors.New("backup unreachable")
					}
					return nil
				}
			}
			r := newRig(t, withBarrier)

			// Healthy barrier: the commit is acknowledged and the hook ran.
			id, fid := r.beginWithFile(fit.LockRecord)
			if _, err := r.svc.PWrite(id, fid, 0, []byte("replicated")); err != nil {
				t.Fatal(err)
			}
			if err := r.svc.End(id); err != nil {
				t.Fatal(err)
			}
			if calls.Load() < 1 {
				t.Fatal("barrier never ran on the commit path")
			}

			// Failing barrier: durable but unacknowledgeable. The committer
			// must get the leader-crashed treatment, not a nil ack and not a
			// dropped batch.
			failBarrier.Store(true)
			id2, fid2 := r.beginWithFile(fit.LockRecord)
			payload := []byte("synced, then the backup vanished")
			if _, err := r.svc.PWrite(id2, fid2, 0, payload); err != nil {
				t.Fatal(err)
			}
			if err := r.svc.End(id2); !errors.Is(err, ErrCommitInterrupted) {
				t.Fatalf("End with failing barrier = %v, want ErrCommitInterrupted", err)
			}

			// The records were synced before the barrier failed, so recovery
			// lands the interrupted commit.
			r.crash()
			if _, err := r.svc.Recover(); err != nil {
				t.Fatal(err)
			}
			got, err := r.fs.ReadAt(fid2, 0, len(payload))
			if err != nil || !bytes.Equal(got, payload) {
				t.Fatalf("interrupted commit after recovery = %q, %v; want %q", got, err, payload)
			}
		})
	}
}

// TestCommitLargerThanLogAborts covers the append-rollback path: a
// transaction whose records cannot fit even an empty log backs its partial
// tail out, aborts cleanly, and leaves the service usable.
func TestCommitLargerThanLogAborts(t *testing.T) {
	r := newRig(t)
	id, fid := r.beginWithFile(fit.LockPage)
	huge := bytes.Repeat([]byte{0xCD}, 600<<10) // > 512 KB log capacity
	if _, err := r.svc.PWrite(id, fid, 0, huge); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(id); !errors.Is(err, ErrAborted) {
		t.Fatalf("End of oversized commit: %v; want ErrAborted", err)
	}
	// The rollback left no poison behind: a normal commit still works.
	id2, fid2 := r.beginWithFile(fit.LockRecord)
	want := []byte("after oversized abort")
	if _, err := r.svc.PWrite(id2, fid2, 0, want); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.End(id2); err != nil {
		t.Fatal(err)
	}
	got, err := r.fs.ReadAt(fid2, 0, len(want))
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("post-abort commit: %q, %v; want %q", got, err, want)
	}
}

// TestChainBarriers pins the composition contract: hooks run in order, nil
// entries are skipped, and the first error short-circuits the rest.
func TestChainBarriers(t *testing.T) {
	var order []string
	errBoom := errors.New("boom")
	b := ChainBarriers(
		func() error { order = append(order, "a"); return nil },
		nil,
		func() error { order = append(order, "b"); return nil },
	)
	if err := b(); err != nil {
		t.Fatalf("chain: %v", err)
	}
	if got := strings.Join(order, ","); got != "a,b" {
		t.Fatalf("order = %q, want a,b", got)
	}
	order = nil
	b = ChainBarriers(
		func() error { order = append(order, "a"); return errBoom },
		func() error { order = append(order, "never"); return nil },
	)
	if err := b(); err != errBoom {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := strings.Join(order, ","); got != "a" {
		t.Fatalf("order = %q, want a (short-circuit)", got)
	}
	if err := ChainBarriers()(); err != nil {
		t.Fatalf("empty chain: %v", err)
	}
}
