// Package cache provides the buffer-cache machinery used at every level of
// the facility (§2.2, §5): the client agents, the file service, and the disk
// service each keep a cache so a request need not descend to the level below.
//
// Space is modeled as the paper describes: buffers come from a fragment-pool
// or block-pool sized by available memory (Pool), and a Cache is an LRU map
// of keys to buffers with one of two modification policies — delayed-write
// (dirty buffers flushed on eviction or an explicit Flush, the policy of the
// file agent) or write-through (every dirty Put is written back immediately,
// the policy the file service adds for transaction data).
//
// Concurrency and ownership contract: Pool and Cache are safe for
// concurrent use. Buffers are copied on Put and Get, so callers keep
// ownership of their slices. Writebacks run outside the cache mutex
// (per-entry in-flight flags keep writebacks of one key serialized, and a
// generation number detects redirtying during a flush); the one duty left
// to the caller: concurrent dirty Puts of the same key in a WriteThrough
// cache must be serialized above — every user here does so from under a
// per-file or per-track lock.
package cache

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
)

// WritePolicy selects how dirty buffers reach the layer below.
type WritePolicy int

const (
	// DelayedWrite keeps dirty buffers in the cache until eviction or Flush.
	DelayedWrite WritePolicy = iota + 1
	// WriteThrough writes every dirty buffer back immediately on Put.
	WriteThrough
)

// String implements fmt.Stringer.
func (p WritePolicy) String() string {
	switch p {
	case DelayedWrite:
		return "delayed-write"
	case WriteThrough:
		return "write-through"
	default:
		return fmt.Sprintf("WritePolicy(%d)", int(p))
	}
}

// ErrPoolExhausted reports that a Pool has no free buffers.
var ErrPoolExhausted = errors.New("cache: buffer pool exhausted")

// Pool is a bounded recycler of fixed-size buffers — the paper's
// fragment-pool and block-pool (§5). The zero value is unusable; use NewPool.
type Pool struct {
	size int
	max  int

	mu          sync.Mutex
	free        [][]byte
	outstanding int
}

// NewPool returns a pool of at most max buffers of size bytes each.
func NewPool(size, max int) (*Pool, error) {
	if size <= 0 || max <= 0 {
		return nil, fmt.Errorf("cache: invalid pool size=%d max=%d", size, max)
	}
	return &Pool{size: size, max: max}, nil
}

// BufferSize returns the size of each buffer in bytes.
func (p *Pool) BufferSize() int { return p.size }

// Get returns a zeroed buffer, or ErrPoolExhausted if max buffers are
// already outstanding.
func (p *Pool) Get() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.outstanding >= p.max {
		return nil, ErrPoolExhausted
	}
	p.outstanding++
	if n := len(p.free); n > 0 {
		buf := p.free[n-1]
		p.free = p.free[:n-1]
		for i := range buf {
			buf[i] = 0
		}
		return buf, nil
	}
	return make([]byte, p.size), nil
}

// Put returns a buffer to the pool. Buffers of the wrong size are dropped.
func (p *Pool) Put(buf []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.outstanding > 0 {
		p.outstanding--
	}
	if len(buf) == p.size {
		p.free = append(p.free, buf)
	}
}

// Outstanding returns the number of buffers currently checked out.
func (p *Pool) Outstanding() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.outstanding
}

// WritebackFunc persists a dirty buffer to the layer below.
type WritebackFunc[K comparable] func(key K, data []byte) error

// Cache is an LRU buffer cache. It is safe for concurrent use. Buffers are
// copied on Put and Get, so callers may freely reuse their slices.
//
// Writebacks happen outside the cache mutex wherever possible, so flushing
// one disk's buffers never blocks hits, misses, or flushes bound for another
// disk. A per-entry generation number detects a buffer redirtied while its
// writeback was in flight (the flush then leaves it dirty), and a per-entry
// in-flight flag keeps writebacks of the same key serialized. One caveat for
// WriteThrough caches: concurrent dirty Puts of the same key must be
// serialized by the caller (every user of this package writes a given key
// from under a per-file or per-track lock).
type Cache[K comparable] struct {
	capacity  int
	policy    WritePolicy
	writeback WritebackFunc[K]
	met       *metrics.Set
	hitName   string
	missName  string

	mu      sync.Mutex
	cond    *sync.Cond // signaled when a writeback in flight completes
	seq     uint64     // generation source for dirty Puts
	entries map[K]*list.Element
	lru     *list.List // front = most recently used
}

type entry[K comparable] struct {
	key      K
	data     []byte
	dirty    bool
	gen      uint64 // generation of the last dirty Put
	flushing bool   // a writeback of this entry is in flight
}

// Config configures a Cache.
type Config[K comparable] struct {
	// Capacity is the maximum number of cached buffers; must be positive.
	Capacity int
	// Policy is the modification policy; defaults to DelayedWrite.
	Policy WritePolicy
	// Writeback persists dirty buffers; required unless the cache only ever
	// holds clean data.
	Writeback WritebackFunc[K]
	// Metrics, HitCounter and MissCounter, when set, record hit/miss counts.
	Metrics     *metrics.Set
	HitCounter  string
	MissCounter string
}

// New creates a cache from cfg.
func New[K comparable](cfg Config[K]) (*Cache[K], error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("cache: invalid capacity %d", cfg.Capacity)
	}
	policy := cfg.Policy
	if policy == 0 {
		policy = DelayedWrite
	}
	if policy != DelayedWrite && policy != WriteThrough {
		return nil, fmt.Errorf("cache: invalid policy %v", policy)
	}
	c := &Cache[K]{
		capacity:  cfg.Capacity,
		policy:    policy,
		writeback: cfg.Writeback,
		met:       cfg.Metrics,
		hitName:   cfg.HitCounter,
		missName:  cfg.MissCounter,
		entries:   make(map[K]*list.Element),
		lru:       list.New(),
	}
	c.cond = sync.NewCond(&c.mu)
	return c, nil
}

// Policy returns the cache's modification policy.
func (c *Cache[K]) Policy() WritePolicy { return c.policy }

// Len returns the number of cached buffers.
func (c *Cache[K]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Get returns a copy of the buffer cached under key, marking it most
// recently used.
func (c *Cache[K]) Get(key K) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		if c.missName != "" {
			c.met.Inc(c.missName)
		}
		return nil, false
	}
	if c.hitName != "" {
		c.met.Inc(c.hitName)
	}
	c.lru.MoveToFront(el)
	e := el.Value.(*entry[K])
	out := make([]byte, len(e.data))
	copy(out, e.data)
	return out, true
}

// Contains reports whether key is cached, without affecting LRU order or
// hit/miss counters.
func (c *Cache[K]) Contains(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Put caches a copy of data under key. When dirty is true the buffer is
// written back according to the cache policy: immediately for WriteThrough,
// or on eviction/Flush for DelayedWrite. Put may evict the least recently
// used buffer, writing it back first if dirty; a failed eviction writeback
// fails the Put and keeps the victim.
func (c *Cache[K]) Put(key K, data []byte, dirty bool) error {
	if dirty && c.policy == WriteThrough {
		// Write through before taking the cache lock, so a slow device never
		// stalls unrelated hits. Concurrent dirty Puts of the same key are the
		// caller's to serialize (see the type comment).
		if c.writeback == nil {
			return errors.New("cache: write-through cache has no writeback")
		}
		if err := c.writeback(key, data); err != nil {
			return fmt.Errorf("cache: write-through: %w", err)
		}
		dirty = false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry[K])
		e.data = append(e.data[:0], data...)
		if dirty {
			e.dirty = true
			c.seq++
			e.gen = c.seq
		}
		c.lru.MoveToFront(el)
		return nil
	}
	if len(c.entries) >= c.capacity {
		if err := c.evictLocked(); err != nil {
			return err
		}
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	e := &entry[K]{key: key, data: cp, dirty: dirty}
	if dirty {
		c.seq++
		e.gen = c.seq
	}
	el := c.lru.PushFront(e)
	c.entries[key] = el
	return nil
}

// evictLocked removes the least recently used entry whose writeback is not
// in flight, writing it back first if dirty. Callers must hold c.mu.
func (c *Cache[K]) evictLocked() error {
	for {
		var victim *list.Element
		for el := c.lru.Back(); el != nil; el = el.Prev() {
			if !el.Value.(*entry[K]).flushing {
				victim = el
				break
			}
		}
		if victim == nil {
			if c.lru.Len() == 0 {
				return nil
			}
			// Every entry has a writeback in flight; wait for one to finish.
			c.cond.Wait()
			continue
		}
		e := victim.Value.(*entry[K])
		if e.dirty {
			if c.writeback == nil {
				return errors.New("cache: evicting dirty buffer with no writeback")
			}
			if err := c.writeback(e.key, e.data); err != nil {
				return fmt.Errorf("cache: eviction writeback: %w", err)
			}
		}
		c.lru.Remove(victim)
		delete(c.entries, e.key)
		return nil
	}
}

// Invalidate drops key from the cache, discarding any dirty data (used when
// the layer below changed underneath us, e.g. on transaction abort). It
// waits out any writeback of the key already in flight, so no stale write
// can land after the invalidation returns.
func (c *Cache[K]) Invalidate(key K) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		el, ok := c.entries[key]
		if !ok {
			return
		}
		e := el.Value.(*entry[K])
		if !e.flushing {
			c.lru.Remove(el)
			delete(c.entries, key)
			return
		}
		c.cond.Wait()
	}
}

// InvalidateAll empties the cache, discarding dirty data. Like Invalidate it
// waits out in-flight writebacks first.
func (c *Cache[K]) InvalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		inFlight := false
		for el := c.lru.Front(); el != nil; el = el.Next() {
			if el.Value.(*entry[K]).flushing {
				inFlight = true
				break
			}
		}
		if !inFlight {
			break
		}
		c.cond.Wait()
	}
	c.entries = make(map[K]*list.Element)
	c.lru.Init()
}

// Flush writes back every dirty buffer, leaving them cached clean. Buffers
// dirtied concurrently with the Flush may or may not be included.
func (c *Cache[K]) Flush() error {
	for _, key := range c.DirtyKeys() {
		if err := c.FlushKey(key); err != nil {
			return err
		}
	}
	return nil
}

// DirtyKeys returns the keys of every dirty buffer, most recently used
// first. Callers use it to partition a flush by destination (e.g. one
// goroutine per disk) while preserving per-destination order.
func (c *Cache[K]) DirtyKeys() []K {
	c.mu.Lock()
	defer c.mu.Unlock()
	var keys []K
	for el := c.lru.Front(); el != nil; el = el.Next() {
		if e := el.Value.(*entry[K]); e.dirty {
			keys = append(keys, e.key)
		}
	}
	return keys
}

// FlushKey writes back the buffer under key if it is dirty. The writeback
// runs outside the cache lock; a Put that redirties the key while the
// writeback is in flight leaves the buffer dirty (detected by generation),
// and concurrent FlushKey calls for the same key serialize on the in-flight
// flag.
func (c *Cache[K]) FlushKey(key K) error {
	c.mu.Lock()
	var e *entry[K]
	for {
		el, ok := c.entries[key]
		if !ok {
			c.mu.Unlock()
			return nil
		}
		e = el.Value.(*entry[K])
		if !e.dirty {
			c.mu.Unlock()
			return nil
		}
		if !e.flushing {
			break
		}
		c.cond.Wait()
	}
	if c.writeback == nil {
		c.mu.Unlock()
		return errors.New("cache: flushing dirty buffer with no writeback")
	}
	data := append([]byte(nil), e.data...)
	gen := e.gen
	e.flushing = true
	c.mu.Unlock()

	err := c.writeback(key, data)

	c.mu.Lock()
	if el, ok := c.entries[key]; ok && el.Value.(*entry[K]) == e {
		e.flushing = false
		if err == nil && e.gen == gen {
			e.dirty = false
		}
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	if err != nil {
		return fmt.Errorf("cache: flush: %w", err)
	}
	return nil
}

// DirtyCount returns the number of dirty buffers (diagnostic).
func (c *Cache[K]) DirtyCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.lru.Front(); el != nil; el = el.Next() {
		if el.Value.(*entry[K]).dirty {
			n++
		}
	}
	return n
}

// Flusher periodically flushes a cache in the background — the delayed-write
// daemon. Stop it with Close; Close waits for the goroutine to exit.
type Flusher struct {
	stop chan struct{}
	done chan struct{}
}

// Flushable is anything with a Flush method (satisfied by *Cache[K]).
type Flushable interface{ Flush() error }

// StartFlusher flushes c every interval until Close is called. Flush errors
// are delivered to onErr, which may be nil.
func StartFlusher(c Flushable, interval time.Duration, onErr func(error)) *Flusher {
	f := &Flusher{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(f.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-f.stop:
				return
			case <-t.C:
				if err := c.Flush(); err != nil && onErr != nil {
					onErr(err)
				}
			}
		}
	}()
	return f
}

// Close stops the flusher and waits for it to exit. Close is idempotent.
func (f *Flusher) Close() {
	select {
	case <-f.stop:
	default:
		close(f.stop)
	}
	<-f.done
}
