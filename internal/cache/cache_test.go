package cache

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

func newDelayed(t *testing.T, capacity int, wb WritebackFunc[int]) *Cache[int] {
	t.Helper()
	c, err := New(Config[int]{Capacity: capacity, Policy: DelayedWrite, Writeback: wb})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config[int]{Capacity: 0}); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := New(Config[int]{Capacity: 1, Policy: WritePolicy(99)}); err == nil {
		t.Fatal("bogus policy accepted")
	}
	c, err := New(Config[int]{Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Policy() != DelayedWrite {
		t.Fatalf("default policy = %v, want delayed-write", c.Policy())
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	c := newDelayed(t, 4, nil)
	if err := c.Put(1, []byte("hello"), false); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(1)
	if !ok || string(got) != "hello" {
		t.Fatalf("Get = %q,%v, want hello,true", got, ok)
	}
	if _, ok := c.Get(2); ok {
		t.Fatal("Get of absent key succeeded")
	}
}

func TestBuffersAreCopied(t *testing.T) {
	c := newDelayed(t, 4, nil)
	src := []byte("abc")
	if err := c.Put(1, src, false); err != nil {
		t.Fatal(err)
	}
	src[0] = 'z'
	got, _ := c.Get(1)
	if string(got) != "abc" {
		t.Fatal("Put did not copy the caller's buffer")
	}
	got[0] = 'q'
	again, _ := c.Get(1)
	if string(again) != "abc" {
		t.Fatal("Get did not return a copy")
	}
}

func TestLRUEviction(t *testing.T) {
	c := newDelayed(t, 2, nil)
	mustPut := func(k int) {
		t.Helper()
		if err := c.Put(k, []byte{byte(k)}, false); err != nil {
			t.Fatal(err)
		}
	}
	mustPut(1)
	mustPut(2)
	c.Get(1) // 1 is now most recent
	mustPut(3)
	if c.Contains(2) {
		t.Fatal("LRU victim 2 still cached")
	}
	if !c.Contains(1) || !c.Contains(3) {
		t.Fatal("wrong entries evicted")
	}
}

func TestDelayedWriteFlushesOnEviction(t *testing.T) {
	var wrote []int
	c := newDelayed(t, 1, func(k int, data []byte) error {
		wrote = append(wrote, k)
		return nil
	})
	if err := c.Put(1, []byte("x"), true); err != nil {
		t.Fatal(err)
	}
	if len(wrote) != 0 {
		t.Fatal("delayed-write wrote back before eviction")
	}
	if err := c.Put(2, []byte("y"), false); err != nil {
		t.Fatal(err)
	}
	if len(wrote) != 1 || wrote[0] != 1 {
		t.Fatalf("eviction writebacks = %v, want [1]", wrote)
	}
}

func TestWriteThroughWritesImmediately(t *testing.T) {
	var wrote []int
	c, err := New(Config[int]{Capacity: 4, Policy: WriteThrough, Writeback: func(k int, data []byte) error {
		wrote = append(wrote, k)
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(1, []byte("x"), true); err != nil {
		t.Fatal(err)
	}
	if len(wrote) != 1 {
		t.Fatalf("write-through writebacks = %v, want [1]", wrote)
	}
	// The entry is now clean: flushing writes nothing more.
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(wrote) != 1 {
		t.Fatalf("flush after write-through rewrote: %v", wrote)
	}
}

func TestFlushWritesDirtyOnly(t *testing.T) {
	var wrote []int
	c := newDelayed(t, 4, func(k int, data []byte) error {
		wrote = append(wrote, k)
		return nil
	})
	if err := c.Put(1, []byte("a"), true); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(2, []byte("b"), false); err != nil {
		t.Fatal(err)
	}
	if got := c.DirtyCount(); got != 1 {
		t.Fatalf("DirtyCount = %d, want 1", got)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(wrote) != 1 || wrote[0] != 1 {
		t.Fatalf("flush wrote %v, want [1]", wrote)
	}
	if got := c.DirtyCount(); got != 0 {
		t.Fatalf("DirtyCount after flush = %d, want 0", got)
	}
	// Second flush is a no-op.
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(wrote) != 1 {
		t.Fatalf("second flush rewrote: %v", wrote)
	}
}

func TestFlushKey(t *testing.T) {
	var wrote []int
	c := newDelayed(t, 4, func(k int, data []byte) error {
		wrote = append(wrote, k)
		return nil
	})
	if err := c.Put(1, []byte("a"), true); err != nil {
		t.Fatal(err)
	}
	if err := c.FlushKey(2); err != nil { // absent key: no-op
		t.Fatal(err)
	}
	if err := c.FlushKey(1); err != nil {
		t.Fatal(err)
	}
	if len(wrote) != 1 || wrote[0] != 1 {
		t.Fatalf("FlushKey wrote %v, want [1]", wrote)
	}
}

func TestDirtyBitSticksAcrossCleanPut(t *testing.T) {
	var wrote []int
	c := newDelayed(t, 4, func(k int, data []byte) error {
		wrote = append(wrote, k)
		return nil
	})
	if err := c.Put(1, []byte("a"), true); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(1, []byte("b"), false); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(wrote) != 1 {
		t.Fatalf("dirty bit lost on clean re-Put: wrote %v", wrote)
	}
}

func TestInvalidateDiscardsDirty(t *testing.T) {
	var wrote []int
	c := newDelayed(t, 4, func(k int, data []byte) error {
		wrote = append(wrote, k)
		return nil
	})
	if err := c.Put(1, []byte("a"), true); err != nil {
		t.Fatal(err)
	}
	c.Invalidate(1)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(wrote) != 0 {
		t.Fatalf("invalidated dirty buffer was written back: %v", wrote)
	}
	if c.Contains(1) {
		t.Fatal("entry survives Invalidate")
	}
}

func TestInvalidateAll(t *testing.T) {
	c := newDelayed(t, 4, nil)
	for i := 0; i < 3; i++ {
		if err := c.Put(i, []byte("x"), false); err != nil {
			t.Fatal(err)
		}
	}
	c.InvalidateAll()
	if c.Len() != 0 {
		t.Fatalf("Len after InvalidateAll = %d, want 0", c.Len())
	}
}

func TestEvictionWritebackFailureKeepsVictim(t *testing.T) {
	fail := errors.New("disk down")
	c := newDelayed(t, 1, func(k int, data []byte) error { return fail })
	if err := c.Put(1, []byte("a"), true); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(2, []byte("b"), false); !errors.Is(err, fail) {
		t.Fatalf("Put during failed eviction = %v, want wrapped disk error", err)
	}
	if !c.Contains(1) {
		t.Fatal("victim discarded despite failed writeback")
	}
}

func TestDirtyWithNoWritebackErrors(t *testing.T) {
	c := newDelayed(t, 1, nil)
	if err := c.Put(1, []byte("a"), true); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err == nil {
		t.Fatal("Flush of dirty buffer with nil writeback succeeded")
	}
}

func TestHitMissCounters(t *testing.T) {
	met := metrics.NewSet()
	c, err := New(Config[int]{
		Capacity: 2, Writeback: nil,
		Metrics: met, HitCounter: "h", MissCounter: "m",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(1, []byte("a"), false); err != nil {
		t.Fatal(err)
	}
	c.Get(1)
	c.Get(1)
	c.Get(9)
	if met.Get("h") != 2 || met.Get("m") != 1 {
		t.Fatalf("hits=%d misses=%d, want 2 and 1", met.Get("h"), met.Get("m"))
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := newDelayed(t, 16, func(k int, data []byte) error { return nil })
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (w*200 + i) % 32
				if err := c.Put(k, []byte{byte(k)}, i%2 == 0); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if got, ok := c.Get(k); ok && len(got) == 1 && got[0] != byte(k) {
					t.Errorf("Get(%d) = %v", k, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestPool(t *testing.T) {
	p, err := NewPool(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.BufferSize() != 8 {
		t.Fatalf("BufferSize = %d, want 8", p.BufferSize())
	}
	a, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("third Get = %v, want ErrPoolExhausted", err)
	}
	if p.Outstanding() != 2 {
		t.Fatalf("Outstanding = %d, want 2", p.Outstanding())
	}
	a[0] = 0xAA
	p.Put(a)
	c, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if c[0] != 0 {
		t.Fatal("recycled buffer not zeroed")
	}
	_ = b
}

func TestPoolValidation(t *testing.T) {
	if _, err := NewPool(0, 1); err == nil {
		t.Fatal("NewPool(0,1) succeeded")
	}
	if _, err := NewPool(8, 0); err == nil {
		t.Fatal("NewPool(8,0) succeeded")
	}
}

func TestFlusherFlushesPeriodically(t *testing.T) {
	var mu sync.Mutex
	flushes := 0
	c := newDelayed(t, 4, func(k int, data []byte) error {
		mu.Lock()
		flushes++
		mu.Unlock()
		return nil
	})
	f := StartFlusher(c, 5*time.Millisecond, nil)
	defer f.Close()
	if err := c.Put(1, []byte("a"), true); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := flushes
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flusher never flushed")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFlusherCloseIdempotent(t *testing.T) {
	c := newDelayed(t, 4, nil)
	f := StartFlusher(c, time.Hour, nil)
	f.Close()
	f.Close()
}

func TestFlusherReportsErrors(t *testing.T) {
	errCh := make(chan error, 1)
	c := newDelayed(t, 4, func(k int, data []byte) error { return fmt.Errorf("boom") })
	if err := c.Put(1, []byte("a"), true); err != nil {
		t.Fatal(err)
	}
	f := StartFlusher(c, 2*time.Millisecond, func(err error) {
		select {
		case errCh <- err:
		default:
		}
	})
	defer f.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("nil error delivered")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("flusher never reported the error")
	}
}
