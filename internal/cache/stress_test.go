package cache

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

// stressStore is the layer below: a concurrency-safe backing map that checks
// every buffer written back is well-formed for its key.
type stressStore struct {
	mu   sync.Mutex
	data map[int][]byte
	errs []string
}

func (s *stressStore) writeback(key int, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if k, _ := decodeStress(data); k != key {
		s.errs = append(s.errs, fmt.Sprintf("writeback of key %d carries key %d's buffer", key, k))
	}
	s.data[key] = append([]byte(nil), data...)
	return nil
}

func encodeStress(key, version int) []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf[0:], uint64(key))
	binary.LittleEndian.PutUint64(buf[8:], uint64(version))
	return buf
}

func decodeStress(data []byte) (key, version int) {
	if len(data) != 16 {
		return -1, -1
	}
	return int(binary.LittleEndian.Uint64(data[0:])), int(binary.LittleEndian.Uint64(data[8:]))
}

// TestStressConcurrent hammers one cache per policy from many goroutines:
// each key has exactly one writer (the package's per-key serialization
// contract), while readers, flushers and invalidators race freely. Run under
// -race; the data checks catch cross-key mixups and lost writebacks.
func TestStressConcurrent(t *testing.T) {
	for _, policy := range []WritePolicy{DelayedWrite, WriteThrough} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			t.Parallel()
			store := &stressStore{data: make(map[int][]byte)}
			c, err := New(Config[int]{
				Capacity:  32, // far fewer slots than keys, so eviction races too
				Policy:    policy,
				Writeback: store.writeback,
			})
			if err != nil {
				t.Fatal(err)
			}

			const (
				writers       = 8
				keysPerWriter = 16
				iters         = 300
			)
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					base := w * keysPerWriter
					for i := 0; i < iters; i++ {
						key := base + i%keysPerWriter
						version := i/keysPerWriter + 1
						if err := c.Put(key, encodeStress(key, version), true); err != nil {
							t.Errorf("Put(%d): %v", key, err)
							return
						}
						switch i % 7 {
						case 1:
							if data, ok := c.Get(key); ok {
								if k, v := decodeStress(data); k != key || v > version {
									t.Errorf("Get(%d) = key %d version %d (wrote %d)", key, k, v, version)
									return
								}
							}
						case 3:
							if err := c.FlushKey(key); err != nil {
								t.Errorf("FlushKey(%d): %v", key, err)
								return
							}
						case 5:
							c.Invalidate(key)
						}
					}
				}(w)
			}
			// Racing whole-cache operations.
			stop := make(chan struct{})
			var bg sync.WaitGroup
			bg.Add(2)
			go func() {
				defer bg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						if err := c.Flush(); err != nil {
							t.Errorf("Flush: %v", err)
							return
						}
					}
				}
			}()
			go func() {
				defer bg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
						if data, ok := c.Get(i % (writers * keysPerWriter)); ok {
							if k, _ := decodeStress(data); k != i%(writers*keysPerWriter) {
								t.Errorf("reader Get(%d) returned key %d's buffer", i%(writers*keysPerWriter), k)
								return
							}
						}
					}
				}
			}()
			wg.Wait()
			close(stop)
			bg.Wait()

			if err := c.Flush(); err != nil {
				t.Fatalf("final Flush: %v", err)
			}
			if n := c.DirtyCount(); n != 0 {
				t.Fatalf("DirtyCount after final Flush = %d, want 0", n)
			}
			store.mu.Lock()
			defer store.mu.Unlock()
			for _, msg := range store.errs {
				t.Error(msg)
			}
			for key, data := range store.data {
				if k, _ := decodeStress(data); k != key {
					t.Errorf("store[%d] holds key %d's buffer", key, k)
				}
			}
		})
	}
}
