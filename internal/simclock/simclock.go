// Package simclock provides a virtual clock used to account for simulated
// device time deterministically.
//
// All disk-cost accounting in the repository runs on a Clock rather than the
// wall clock: a simulated seek "takes" time by advancing the clock, so
// benchmarks are fast, reproducible, and independent of host load. The same
// Clock interface also drives lock-timeout logic in the transaction service,
// which lets tests force deadlock-timeout expiry without sleeping.
package simclock

import (
	"sync"
	"time"
)

// Clock is a source of virtual time.
//
// Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current virtual time.
	Now() time.Duration
	// Advance moves the clock forward by d and returns the new time.
	// Advance panics if d is negative.
	Advance(d time.Duration) time.Duration
}

// Virtual is a purely virtual clock: time moves only when Advance is called.
// The zero value is ready to use and starts at 0.
type Virtual struct {
	mu  sync.Mutex
	now time.Duration
}

// New returns a new virtual clock starting at zero.
func New() *Virtual { return &Virtual{} }

var _ Clock = (*Virtual)(nil)

// Now returns the current virtual time.
func (c *Virtual) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new time.
func (c *Virtual) Advance(d time.Duration) time.Duration {
	if d < 0 {
		panic("simclock: negative advance")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now
}

// OpClock is a Clock whose users can bracket each charged operation, so an
// overlap-aware accounting layer (Group) can tell concurrent operations from
// sequential ones. BeginOp(cost) charges cost virtual time to the clock at
// the start of the operation; EndOp marks its completion. Advance(d) is
// equivalent to BeginOp(d) immediately followed by EndOp.
type OpClock interface {
	Clock
	BeginOp(cost time.Duration)
	EndOp()
}

// Batcher marks a window in which operations issued to different members of
// a Group are logically concurrent — the scatter-gather layers bracket their
// fan-out with EnterBatch/LeaveBatch so the overlap credit is structural
// (derived from the code's actual dispatch) rather than dependent on host
// scheduling.
type Batcher interface {
	EnterBatch()
	LeaveBatch()
}

// BeginOp charges d to the virtual clock; on a plain Virtual there is no
// overlap accounting, so it is just Advance.
func (c *Virtual) BeginOp(d time.Duration) { c.Advance(d) }

// EndOp is a no-op on a plain Virtual clock.
func (c *Virtual) EndOp() {}

var _ OpClock = (*Virtual)(nil)

// Group accounts virtual time across a set of devices (Members) with
// overlap-aware merging: operations that are in flight concurrently — either
// because their wall-clock windows overlap or because they were dispatched
// inside one EnterBatch/LeaveBatch window — occupy overlapping virtual
// intervals, so the group's Elapsed is the makespan (max over concurrently
// busy devices), not the sum. Strictly sequential operations still sum.
//
// The rule: while any operation or batch is open ("a burst"), a member's
// next operation starts at max(burst base, that member's own busy-until);
// when the group is idle, the next operation starts at the current elapsed
// time. Same-member operations therefore always serialize (one spindle),
// while different members overlap exactly when the workload actually
// dispatched them together.
type Group struct {
	mu      sync.Mutex
	elapsed time.Duration // overlap-aware completion time of all work so far
	base    time.Duration // elapsed when the current burst opened
	bursts  int           // open operations + open batches
}

// NewGroup returns an empty group at time zero.
func NewGroup() *Group { return &Group{} }

// Elapsed returns the overlap-aware completion time of all work charged so
// far: cluster makespan for batched scatter-gather, plain sum for strictly
// sequential work.
func (g *Group) Elapsed() time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.elapsed
}

func (g *Group) enterBurstLocked() {
	if g.bursts == 0 {
		g.base = g.elapsed
	}
	g.bursts++
}

func (g *Group) leaveBurstLocked() {
	g.bursts--
}

// EnterBatch opens a logical-concurrency window: operations charged to any
// member before the matching LeaveBatch overlap (subject to per-member
// serialization). Batches nest.
func (g *Group) EnterBatch() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.enterBurstLocked()
}

// LeaveBatch closes the window opened by EnterBatch.
func (g *Group) LeaveBatch() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.leaveBurstLocked()
}

var _ Batcher = (*Group)(nil)

// NewMember adds a device to the group and returns its clock.
func (g *Group) NewMember() *Member { return &Member{g: g} }

// Member is one device's clock within a Group. Now returns the device's own
// accumulated busy time (the per-disk virtual time of the serialized design),
// while the group's Elapsed merges members with overlap awareness.
type Member struct {
	g         *Group
	busy      time.Duration // total time this member spent busy
	busyUntil time.Duration // group-timeline instant this member is busy until
}

var _ OpClock = (*Member)(nil)

// Now returns the member's accumulated busy time.
func (m *Member) Now() time.Duration {
	m.g.mu.Lock()
	defer m.g.mu.Unlock()
	return m.busy
}

// BeginOp charges one operation of the given cost to the member, reserving
// its virtual interval on the group timeline.
func (m *Member) BeginOp(cost time.Duration) {
	if cost < 0 {
		panic("simclock: negative cost")
	}
	g := m.g
	g.mu.Lock()
	defer g.mu.Unlock()
	g.enterBurstLocked()
	start := g.base
	if m.busyUntil > start {
		start = m.busyUntil
	}
	end := start + cost
	m.busyUntil = end
	m.busy += cost
	if end > g.elapsed {
		g.elapsed = end
	}
}

// EndOp marks the operation begun by BeginOp complete.
func (m *Member) EndOp() {
	g := m.g
	g.mu.Lock()
	defer g.mu.Unlock()
	g.leaveBurstLocked()
}

// Advance charges d as one immediately completed operation and returns the
// member's accumulated busy time.
func (m *Member) Advance(d time.Duration) time.Duration {
	m.BeginOp(d)
	m.EndOp()
	return m.Now()
}

// Wall is a Clock backed by the real monotonic clock. Advance on a Wall
// clock is a no-op apart from returning Now, which makes it suitable for
// running the same code against real time (e.g. in the TCP server where
// simulated time is meaningless).
type Wall struct {
	start time.Time
	once  sync.Once
}

var _ Clock = (*Wall)(nil)

func (c *Wall) init() { c.once.Do(func() { c.start = time.Now() }) }

// Now returns the elapsed wall time since the first use of the clock.
func (c *Wall) Now() time.Duration {
	c.init()
	return time.Since(c.start)
}

// Advance returns the current wall time; real time cannot be advanced.
func (c *Wall) Advance(time.Duration) time.Duration { return c.Now() }
