// Package simclock provides a virtual clock used to account for simulated
// device time deterministically.
//
// All disk-cost accounting in the repository runs on a Clock rather than the
// wall clock: a simulated seek "takes" time by advancing the clock, so
// benchmarks are fast, reproducible, and independent of host load. The same
// Clock interface also drives lock-timeout logic in the transaction service,
// which lets tests force deadlock-timeout expiry without sleeping.
package simclock

import (
	"sync"
	"time"
)

// Clock is a source of virtual time.
//
// Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current virtual time.
	Now() time.Duration
	// Advance moves the clock forward by d and returns the new time.
	// Advance panics if d is negative.
	Advance(d time.Duration) time.Duration
}

// Virtual is a purely virtual clock: time moves only when Advance is called.
// The zero value is ready to use and starts at 0.
type Virtual struct {
	mu  sync.Mutex
	now time.Duration
}

// New returns a new virtual clock starting at zero.
func New() *Virtual { return &Virtual{} }

var _ Clock = (*Virtual)(nil)

// Now returns the current virtual time.
func (c *Virtual) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new time.
func (c *Virtual) Advance(d time.Duration) time.Duration {
	if d < 0 {
		panic("simclock: negative advance")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now
}

// Wall is a Clock backed by the real monotonic clock. Advance on a Wall
// clock is a no-op apart from returning Now, which makes it suitable for
// running the same code against real time (e.g. in the TCP server where
// simulated time is meaningless).
type Wall struct {
	start time.Time
	once  sync.Once
}

var _ Clock = (*Wall)(nil)

func (c *Wall) init() { c.once.Do(func() { c.start = time.Now() }) }

// Now returns the elapsed wall time since the first use of the clock.
func (c *Wall) Now() time.Duration {
	c.init()
	return time.Since(c.start)
}

// Advance returns the current wall time; real time cannot be advanced.
func (c *Wall) Advance(time.Duration) time.Duration { return c.Now() }
