package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualStartsAtZero(t *testing.T) {
	c := New()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestVirtualAdvance(t *testing.T) {
	c := New()
	if got := c.Advance(5 * time.Millisecond); got != 5*time.Millisecond {
		t.Fatalf("Advance returned %v, want 5ms", got)
	}
	c.Advance(2 * time.Millisecond)
	if got := c.Now(); got != 7*time.Millisecond {
		t.Fatalf("Now() = %v, want 7ms", got)
	}
}

func TestVirtualAdvanceZero(t *testing.T) {
	c := New()
	c.Advance(0)
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestVirtualNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	New().Advance(-1)
}

func TestVirtualConcurrentAdvance(t *testing.T) {
	c := New()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	want := time.Duration(workers*perWorker) * time.Microsecond
	if got := c.Now(); got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestWallMonotonic(t *testing.T) {
	c := &Wall{}
	a := c.Now()
	b := c.Now()
	if b < a {
		t.Fatalf("wall clock went backwards: %v then %v", a, b)
	}
	if got := c.Advance(time.Hour); got < b {
		t.Fatalf("Advance returned %v, want >= %v", got, b)
	}
}
