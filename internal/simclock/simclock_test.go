package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualStartsAtZero(t *testing.T) {
	c := New()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestVirtualAdvance(t *testing.T) {
	c := New()
	if got := c.Advance(5 * time.Millisecond); got != 5*time.Millisecond {
		t.Fatalf("Advance returned %v, want 5ms", got)
	}
	c.Advance(2 * time.Millisecond)
	if got := c.Now(); got != 7*time.Millisecond {
		t.Fatalf("Now() = %v, want 7ms", got)
	}
}

func TestVirtualAdvanceZero(t *testing.T) {
	c := New()
	c.Advance(0)
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestVirtualNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	New().Advance(-1)
}

func TestVirtualConcurrentAdvance(t *testing.T) {
	c := New()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	want := time.Duration(workers*perWorker) * time.Microsecond
	if got := c.Now(); got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestWallMonotonic(t *testing.T) {
	c := &Wall{}
	a := c.Now()
	b := c.Now()
	if b < a {
		t.Fatalf("wall clock went backwards: %v then %v", a, b)
	}
	if got := c.Advance(time.Hour); got < b {
		t.Fatalf("Advance returned %v, want >= %v", got, b)
	}
}

func TestGroupSequentialSums(t *testing.T) {
	g := NewGroup()
	a := g.NewMember()
	b := g.NewMember()
	a.Advance(10 * time.Millisecond)
	b.Advance(5 * time.Millisecond)
	a.Advance(1 * time.Millisecond)
	if got := g.Elapsed(); got != 16*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 16ms (sequential ops sum)", got)
	}
	if got := a.Now(); got != 11*time.Millisecond {
		t.Fatalf("member a busy = %v, want 11ms", got)
	}
	if got := b.Now(); got != 5*time.Millisecond {
		t.Fatalf("member b busy = %v, want 5ms", got)
	}
}

func TestGroupBatchOverlaps(t *testing.T) {
	g := NewGroup()
	a := g.NewMember()
	b := g.NewMember()
	a.Advance(2 * time.Millisecond) // sequential prelude
	g.EnterBatch()
	a.Advance(10 * time.Millisecond)
	b.Advance(7 * time.Millisecond)
	g.LeaveBatch()
	// Batch ops overlap: elapsed = prelude + max(10ms, 7ms).
	if got := g.Elapsed(); got != 12*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 12ms (batched ops overlap)", got)
	}
	// A later sequential op starts after the batch completes.
	b.Advance(1 * time.Millisecond)
	if got := g.Elapsed(); got != 13*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 13ms", got)
	}
}

func TestGroupSameMemberSerializesInBatch(t *testing.T) {
	g := NewGroup()
	a := g.NewMember()
	b := g.NewMember()
	g.EnterBatch()
	a.Advance(3 * time.Millisecond)
	a.Advance(3 * time.Millisecond) // same spindle: must chain, not overlap
	b.Advance(4 * time.Millisecond)
	g.LeaveBatch()
	if got := g.Elapsed(); got != 6*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 6ms (same member chains)", got)
	}
	if got := a.Now(); got != 6*time.Millisecond {
		t.Fatalf("member a busy = %v, want 6ms", got)
	}
}

func TestGroupBeginEndOpWindow(t *testing.T) {
	g := NewGroup()
	a := g.NewMember()
	b := g.NewMember()
	// Overlapping op windows (no batch): b begins while a is still open.
	a.BeginOp(10 * time.Millisecond)
	b.BeginOp(4 * time.Millisecond)
	a.EndOp()
	b.EndOp()
	if got := g.Elapsed(); got != 10*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 10ms (overlapping op windows)", got)
	}
}

func TestGroupMemberImplementsClock(t *testing.T) {
	g := NewGroup()
	var c Clock = g.NewMember()
	if got := c.Advance(time.Millisecond); got != time.Millisecond {
		t.Fatalf("Advance returned %v, want 1ms", got)
	}
}
