package freespace

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustMap(t *testing.T, capacity int) *Map {
	t.Helper()
	m, err := NewMap(capacity)
	if err != nil {
		t.Fatalf("NewMap(%d): %v", capacity, err)
	}
	return m
}

func TestNewMapInvalid(t *testing.T) {
	for _, c := range []int{0, -1} {
		if _, err := NewMap(c); err == nil {
			t.Errorf("NewMap(%d) succeeded, want error", c)
		}
	}
}

func TestAllocateBasic(t *testing.T) {
	m := mustMap(t, 128)
	start, err := m.Allocate(4)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if m.FreeCount() != 124 {
		t.Fatalf("FreeCount = %d, want 124", m.FreeCount())
	}
	for i := start; i < start+4; i++ {
		if !m.Allocated(i) {
			t.Fatalf("fragment %d not marked allocated", i)
		}
	}
}

func TestAllocateDistinct(t *testing.T) {
	m := mustMap(t, 64)
	seen := map[int]bool{}
	for i := 0; i < 16; i++ {
		start, err := m.Allocate(4)
		if err != nil {
			t.Fatalf("Allocate #%d: %v", i, err)
		}
		for f := start; f < start+4; f++ {
			if seen[f] {
				t.Fatalf("fragment %d allocated twice", f)
			}
			seen[f] = true
		}
	}
	if _, err := m.Allocate(1); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("Allocate on full disk = %v, want ErrNoSpace", err)
	}
}

func TestAllocateNoContiguousRun(t *testing.T) {
	m := mustMap(t, 16)
	// Allocate everything, then free alternating single fragments.
	if _, err := m.Allocate(16); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	for i := 0; i < 16; i += 2 {
		if err := m.Free(i, 1); err != nil {
			t.Fatalf("Free(%d): %v", i, err)
		}
	}
	if _, err := m.Allocate(2); !errors.Is(err, ErrNoContiguousRun) {
		t.Fatalf("Allocate(2) on fragmented disk = %v, want ErrNoContiguousRun", err)
	}
	// Single fragments are still available.
	if _, err := m.Allocate(1); err != nil {
		t.Fatalf("Allocate(1): %v", err)
	}
}

func TestFreeAndCoalesce(t *testing.T) {
	m := mustMap(t, 64)
	a, err := m.Allocate(8)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	b, err := m.Allocate(8)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	c, err := m.Allocate(48)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	// Free the two 8-fragment spans; they are adjacent and must coalesce.
	if err := m.Free(a, 8); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := m.Free(b, 8); err != nil {
		t.Fatalf("Free: %v", err)
	}
	got, err := m.Allocate(16)
	if err != nil {
		t.Fatalf("Allocate(16) after coalescing frees: %v", err)
	}
	if got != min(a, b) {
		t.Fatalf("coalesced allocation at %d, want %d", got, min(a, b))
	}
	_ = c
}

func TestFreeErrors(t *testing.T) {
	m := mustMap(t, 32)
	if err := m.Free(0, 1); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("Free of free fragment = %v, want ErrNotAllocated", err)
	}
	if err := m.Free(-1, 1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Free(-1) = %v, want ErrOutOfRange", err)
	}
	if err := m.Free(30, 4); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Free past end = %v, want ErrOutOfRange", err)
	}
}

func TestAllocateAt(t *testing.T) {
	m := mustMap(t, 32)
	if err := m.AllocateAt(4, 4); err != nil {
		t.Fatalf("AllocateAt: %v", err)
	}
	if err := m.AllocateAt(6, 2); !errors.Is(err, ErrAllocated) {
		t.Fatalf("overlapping AllocateAt = %v, want ErrAllocated", err)
	}
	// The table must no longer hand out the reserved span.
	for i := 0; i < 28; i++ {
		start, err := m.Allocate(1)
		if err != nil {
			t.Fatalf("Allocate(1) #%d: %v", i, err)
		}
		if start >= 4 && start < 8 {
			t.Fatalf("Allocate handed out reserved fragment %d", start)
		}
	}
}

func TestAllocateNearPrefersHint(t *testing.T) {
	m := mustMap(t, 1024)
	// Carve the space into separated free runs.
	if err := m.AllocateAt(0, 1024); err != nil {
		t.Fatalf("AllocateAt: %v", err)
	}
	for _, start := range []int{0, 500, 1000} {
		if err := m.Free(start, 8); err != nil {
			t.Fatalf("Free(%d): %v", start, err)
		}
	}
	got, err := m.AllocateNear(501, 8)
	if err != nil {
		t.Fatalf("AllocateNear: %v", err)
	}
	if got != 500 {
		t.Fatalf("AllocateNear(501) = %d, want 500", got)
	}
}

func TestFirstFitBaseline(t *testing.T) {
	m := mustMap(t, 256)
	a, err := m.AllocateFirstFit(4)
	if err != nil {
		t.Fatalf("AllocateFirstFit: %v", err)
	}
	if a != 0 {
		t.Fatalf("first fit on empty disk = %d, want 0", a)
	}
	b, err := m.AllocateFirstFit(4)
	if err != nil {
		t.Fatalf("AllocateFirstFit: %v", err)
	}
	if b != 4 {
		t.Fatalf("second first-fit = %d, want 4", b)
	}
	// Free the first span; first fit must reuse it.
	if err := m.Free(a, 4); err != nil {
		t.Fatalf("Free: %v", err)
	}
	c, err := m.AllocateFirstFit(2)
	if err != nil {
		t.Fatalf("AllocateFirstFit: %v", err)
	}
	if c != 0 {
		t.Fatalf("first fit after free = %d, want 0", c)
	}
	if m.Stats().FirstFitUses != 3 {
		t.Fatalf("FirstFitUses = %d, want 3", m.Stats().FirstFitUses)
	}
}

func TestTableFasterThanFirstFit(t *testing.T) {
	// The run table should answer allocations with far fewer bitmap words
	// scanned than first-fit on a large, mostly-allocated disk (claim E4).
	const capacity = 64 * 1024
	table := mustMap(t, capacity)
	ff := mustMap(t, capacity)
	// Fill most of the disk, leaving free space only near the end.
	if err := table.AllocateAt(0, capacity-128); err != nil {
		t.Fatal(err)
	}
	if err := ff.AllocateAt(0, capacity-128); err != nil {
		t.Fatal(err)
	}
	tBefore, fBefore := table.Stats().WordsScanned, ff.Stats().WordsScanned
	for i := 0; i < 16; i++ {
		if _, err := table.Allocate(4); err != nil {
			t.Fatalf("table Allocate: %v", err)
		}
		if _, err := ff.AllocateFirstFit(4); err != nil {
			t.Fatalf("first-fit Allocate: %v", err)
		}
	}
	tScanned := table.Stats().WordsScanned - tBefore
	fScanned := ff.Stats().WordsScanned - fBefore
	if tScanned >= fScanned {
		t.Fatalf("run table scanned %d words, first fit %d; table should scan fewer", tScanned, fScanned)
	}
}

func TestLargestRun(t *testing.T) {
	m := mustMap(t, 64)
	if got := m.LargestRun(); got != 64 {
		t.Fatalf("LargestRun on empty disk = %d, want 64", got)
	}
	if err := m.AllocateAt(10, 10); err != nil {
		t.Fatal(err)
	}
	if got := m.LargestRun(); got != 44 {
		t.Fatalf("LargestRun = %d, want 44", got)
	}
}

func TestFreeRuns(t *testing.T) {
	m := mustMap(t, 32)
	if err := m.AllocateAt(8, 8); err != nil {
		t.Fatal(err)
	}
	runs := m.FreeRuns()
	want := []Run{{0, 8}, {16, 16}}
	if len(runs) != len(want) {
		t.Fatalf("FreeRuns = %v, want %v", runs, want)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Fatalf("FreeRuns[%d] = %v, want %v", i, runs[i], want[i])
		}
	}
}

func TestBitmapPersistRoundTrip(t *testing.T) {
	m := mustMap(t, 200)
	for i := 0; i < 10; i++ {
		if _, err := m.Allocate(3); err != nil {
			t.Fatal(err)
		}
	}
	words := m.Bitmap()
	m2 := mustMap(t, 200)
	if err := m2.LoadBitmap(words); err != nil {
		t.Fatalf("LoadBitmap: %v", err)
	}
	if m2.FreeCount() != m.FreeCount() {
		t.Fatalf("restored FreeCount = %d, want %d", m2.FreeCount(), m.FreeCount())
	}
	r1, r2 := m.FreeRuns(), m2.FreeRuns()
	if len(r1) != len(r2) {
		t.Fatalf("restored FreeRuns = %v, want %v", r2, r1)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("restored run %d = %v, want %v", i, r2[i], r1[i])
		}
	}
}

func TestLoadBitmapWrongSize(t *testing.T) {
	m := mustMap(t, 128)
	if err := m.LoadBitmap(make([]uint64, 1)); err == nil {
		t.Fatal("LoadBitmap with wrong size succeeded")
	}
}

func TestRunTableOverflowStillCorrect(t *testing.T) {
	// Create more than 64 single-fragment holes; the row overflows but the
	// bitmap rescan must still find them all.
	const capacity = 512
	m := mustMap(t, capacity)
	if _, err := m.Allocate(capacity); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < capacity; i += 2 { // 256 single-fragment holes
		if err := m.Free(i, 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < capacity/2; i++ {
		if _, err := m.Allocate(1); err != nil {
			t.Fatalf("Allocate(1) #%d: %v (overflowed rows must fall back to rescan)", i, err)
		}
	}
	if m.FreeCount() != 0 {
		t.Fatalf("FreeCount = %d, want 0", m.FreeCount())
	}
}

func TestLongRunsInOverflowRow(t *testing.T) {
	// Runs longer than 64 fragments live in row 64 with their true length.
	m := mustMap(t, 1024)
	start, err := m.Allocate(100)
	if err != nil {
		t.Fatalf("Allocate(100): %v", err)
	}
	if start != 0 {
		t.Fatalf("Allocate(100) = %d, want 0", start)
	}
	// The 924-fragment remainder must still be allocatable in one piece.
	if _, err := m.Allocate(900); err != nil {
		t.Fatalf("Allocate(900) from remainder: %v", err)
	}
}

// property tests -------------------------------------------------------------

// TestQuickAllocFreeConservation drives a random alloc/free sequence and
// checks the conservation invariant: FreeCount always equals capacity minus
// outstanding allocations, and allocations never overlap.
func TestQuickAllocFreeConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const capacity = 1024
		m, err := NewMap(capacity)
		if err != nil {
			return false
		}
		type alloc struct{ start, n int }
		var live []alloc
		outstanding := 0
		for step := 0; step < 300; step++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				n := 1 + rng.Intn(16)
				start, err := m.Allocate(n)
				if err != nil {
					if !errors.Is(err, ErrNoSpace) && !errors.Is(err, ErrNoContiguousRun) {
						t.Logf("unexpected error: %v", err)
						return false
					}
					continue
				}
				live = append(live, alloc{start, n})
				outstanding += n
			} else {
				i := rng.Intn(len(live))
				a := live[i]
				if err := m.Free(a.start, a.n); err != nil {
					t.Logf("Free(%d,%d): %v", a.start, a.n, err)
					return false
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				outstanding -= a.n
			}
			if m.FreeCount() != capacity-outstanding {
				t.Logf("conservation violated: free=%d want %d", m.FreeCount(), capacity-outstanding)
				return false
			}
		}
		// No two live allocations overlap.
		used := make([]bool, capacity)
		for _, a := range live {
			for i := a.start; i < a.start+a.n; i++ {
				if used[i] {
					t.Logf("overlap at %d", i)
					return false
				}
				used[i] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFreeRunsMatchBitmap checks that FreeRuns is always consistent
// with FreeCount after random churn.
func TestQuickFreeRunsMatchBitmap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := NewMap(512)
		if err != nil {
			return false
		}
		var live [][2]int
		for step := 0; step < 150; step++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				n := 1 + rng.Intn(8)
				if start, err := m.Allocate(n); err == nil {
					live = append(live, [2]int{start, n})
				}
			} else {
				i := rng.Intn(len(live))
				if err := m.Free(live[i][0], live[i][1]); err != nil {
					return false
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		total := 0
		prevEnd := -1
		for _, r := range m.FreeRuns() {
			if r.Len <= 0 || r.Start <= prevEnd {
				return false // runs must be positive, ordered, and maximal
			}
			prevEnd = r.Start + r.Len
			total += r.Len
		}
		return total == m.FreeCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFirstFitEquivalence checks both allocators maintain the same
// conservation invariant under interleaved use.
func TestQuickFirstFitEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := NewMap(512)
		if err != nil {
			return false
		}
		outstanding := 0
		var live [][2]int
		for step := 0; step < 150; step++ {
			switch {
			case rng.Intn(3) == 0 && len(live) > 0:
				i := rng.Intn(len(live))
				if err := m.Free(live[i][0], live[i][1]); err != nil {
					return false
				}
				outstanding -= live[i][1]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			case rng.Intn(2) == 0:
				n := 1 + rng.Intn(8)
				if start, err := m.Allocate(n); err == nil {
					live = append(live, [2]int{start, n})
					outstanding += n
				}
			default:
				n := 1 + rng.Intn(8)
				if start, err := m.AllocateFirstFit(n); err == nil {
					live = append(live, [2]int{start, n})
					outstanding += n
				}
			}
			if m.FreeCount() != 512-outstanding {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
