// Package freespace manages the free space of one disk: a bitmap plus the
// paper's 64×64 table of contiguous free runs (§4).
//
// The bitmap is the source of truth: one bit per 2 KB fragment. On top of it
// sits a 64-row run table; row r caches the start addresses of free runs of
// exactly r contiguous fragments (row 64 also holds longer runs, with their
// true length). The table is initialized and refreshed by scanning the
// bitmap, and lets the allocator answer "is a run of n contiguous fragments
// available?" without touching the bitmap — the paper's stated purpose for
// the array. Each row holds at most 64 cached runs; uncached runs are
// rediscovered by a rescan when the table runs dry.
//
// The package also provides a first-fit bitmap-scan allocator used as the
// baseline in experiment E4.
package freespace

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
)

// TableRows and TableCols are the dimensions of the run table from the
// paper: "a two dimensional array of the order of 64 rows and 64 columns".
const (
	TableRows = 64
	TableCols = 64
)

// Errors returned by the allocator.
var (
	// ErrNoSpace reports that fewer than the requested number of fragments
	// are free anywhere on the disk.
	ErrNoSpace = errors.New("freespace: disk full")
	// ErrNoContiguousRun reports that enough fragments are free but no
	// single run of the requested length exists.
	ErrNoContiguousRun = errors.New("freespace: no contiguous run of requested length")
	// ErrNotAllocated reports a Free of fragments that are already free.
	ErrNotAllocated = errors.New("freespace: fragment not allocated")
	// ErrAllocated reports an AllocateAt of fragments already in use.
	ErrAllocated = errors.New("freespace: fragment already allocated")
	// ErrOutOfRange reports an address beyond the managed capacity.
	ErrOutOfRange = errors.New("freespace: address out of range")
)

// Run is a contiguous span of free fragments.
type Run struct {
	Start int
	Len   int
}

// Stats counts the work the allocator has done, in the units E4 compares:
// how often the run table answered directly versus how many bitmap words a
// scan had to touch.
type Stats struct {
	TableHits    int64 // allocations satisfied from the run table
	Rebuilds     int64 // full bitmap scans to refresh the table
	WordsScanned int64 // bitmap words examined (rebuilds + first-fit scans)
	FirstFitUses int64 // allocations via the baseline first-fit path
}

// Map manages the free space of a disk of Capacity fragments. All fragments
// start free. Map is safe for concurrent use.
type Map struct {
	mu       sync.Mutex
	capacity int
	words    []uint64 // bit set ⇒ fragment allocated
	free     int      // number of free fragments
	// rows[r] caches free runs of length r (r in 1..TableRows); rows[TableRows]
	// additionally holds longer runs with their true length.
	rows  [TableRows + 1][]Run
	stats Stats
}

// NewMap returns a Map managing capacity fragments, all free.
func NewMap(capacity int) (*Map, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("freespace: invalid capacity %d", capacity)
	}
	m := &Map{
		capacity: capacity,
		words:    make([]uint64, (capacity+63)/64),
		free:     capacity,
	}
	m.rebuildLocked()
	return m, nil
}

// Capacity returns the number of fragments managed.
func (m *Map) Capacity() int { return m.capacity }

// FreeCount returns the number of free fragments.
func (m *Map) FreeCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.free
}

// Stats returns a copy of the allocator's work counters.
func (m *Map) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// bit helpers ---------------------------------------------------------------

func (m *Map) isSet(i int) bool { return m.words[i/64]&(1<<(i%64)) != 0 }
func (m *Map) set(i int)        { m.words[i/64] |= 1 << (i % 64) }
func (m *Map) clear(i int)      { m.words[i/64] &^= 1 << (i % 64) }

func (m *Map) checkSpan(start, n int) error {
	if n <= 0 || start < 0 || start+n > m.capacity {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfRange, start, start+n, m.capacity)
	}
	return nil
}

// run table -----------------------------------------------------------------

// rowFor returns the table row index for a run of length n.
func rowFor(n int) int {
	if n > TableRows {
		return TableRows
	}
	return n
}

// cacheRun inserts a free run into the table if its row has space.
func (m *Map) cacheRun(r Run) {
	row := rowFor(r.Len)
	if len(m.rows[row]) < TableCols {
		m.rows[row] = append(m.rows[row], r)
	}
}

// takeRun removes and returns a cached run of length ≥ n, preferring the
// smallest adequate row (best fit at row granularity). ok is false when no
// cached run is long enough.
func (m *Map) takeRun(n int) (Run, bool) {
	for row := rowFor(n); row <= TableRows; row++ {
		for i, r := range m.rows[row] {
			if r.Len < n {
				continue // only possible in the overflow row
			}
			last := len(m.rows[row]) - 1
			m.rows[row][i] = m.rows[row][last]
			m.rows[row] = m.rows[row][:last]
			return r, true
		}
	}
	return Run{}, false
}

// takeRunNear removes and returns the cached run of length ≥ n whose start
// is closest to hint.
func (m *Map) takeRunNear(hint, n int) (Run, bool) {
	bestRow, bestIdx, bestDist := -1, -1, 0
	for row := rowFor(n); row <= TableRows; row++ {
		for i, r := range m.rows[row] {
			if r.Len < n {
				continue
			}
			d := r.Start - hint
			if d < 0 {
				d = -d
			}
			if bestRow == -1 || d < bestDist {
				bestRow, bestIdx, bestDist = row, i, d
			}
		}
	}
	if bestRow == -1 {
		return Run{}, false
	}
	r := m.rows[bestRow][bestIdx]
	last := len(m.rows[bestRow]) - 1
	m.rows[bestRow][bestIdx] = m.rows[bestRow][last]
	m.rows[bestRow] = m.rows[bestRow][:last]
	return r, true
}

// rebuildLocked rescans the bitmap and refills the run table. Callers must
// hold m.mu.
func (m *Map) rebuildLocked() {
	for i := range m.rows {
		m.rows[i] = nil
	}
	m.stats.Rebuilds++
	m.stats.WordsScanned += int64(len(m.words))
	start := -1
	for i := 0; i < m.capacity; i++ {
		if !m.isSet(i) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			m.cacheRun(Run{Start: start, Len: i - start})
			start = -1
		}
	}
	if start >= 0 {
		m.cacheRun(Run{Start: start, Len: m.capacity - start})
	}
}

// allocation ----------------------------------------------------------------

// markAllocated sets bits for run r's first n fragments and returns any
// remainder to the table.
func (m *Map) markAllocated(r Run, n int) int {
	for i := r.Start; i < r.Start+n; i++ {
		m.set(i)
	}
	m.free -= n
	if r.Len > n {
		m.cacheRun(Run{Start: r.Start + n, Len: r.Len - n})
	}
	return r.Start
}

// Allocate finds n contiguous free fragments and marks them allocated,
// returning the start address. It consults the run table first and rescans
// the bitmap once if the table has no adequate run. If no contiguous run of
// length n exists it returns ErrNoContiguousRun (or ErrNoSpace if fewer than
// n fragments are free in total).
func (m *Map) Allocate(n int) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.allocateLocked(n, -1)
}

// AllocateNear behaves like Allocate but prefers the cached run whose start
// is closest to hint — used to place a file's first data block next to its
// file index table (§5).
func (m *Map) AllocateNear(hint, n int) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.allocateLocked(n, hint)
}

func (m *Map) allocateLocked(n, hint int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("%w: n=%d", ErrOutOfRange, n)
	}
	if n > m.free {
		return 0, fmt.Errorf("%w: want %d, %d free", ErrNoSpace, n, m.free)
	}
	take := func() (Run, bool) {
		if hint >= 0 {
			return m.takeRunNear(hint, n)
		}
		return m.takeRun(n)
	}
	if r, ok := take(); ok {
		m.stats.TableHits++
		return m.markAllocated(r, n), nil
	}
	// The table may simply be stale (runs uncached due to row overflow or
	// churn); rebuild once from the bitmap before giving up.
	m.rebuildLocked()
	if r, ok := take(); ok {
		return m.markAllocated(r, n), nil
	}
	return 0, fmt.Errorf("%w: want %d, %d free", ErrNoContiguousRun, n, m.free)
}

// AllocateFirstFit is the baseline allocator for experiment E4: it ignores
// the run table and scans the bitmap from address zero for the first free
// run of length n.
func (m *Map) AllocateFirstFit(n int) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n <= 0 {
		return 0, fmt.Errorf("%w: n=%d", ErrOutOfRange, n)
	}
	if n > m.free {
		return 0, fmt.Errorf("%w: want %d, %d free", ErrNoSpace, n, m.free)
	}
	m.stats.FirstFitUses++
	runStart, runLen := -1, 0
	for i := 0; i < m.capacity; i++ {
		if i%64 == 0 {
			m.stats.WordsScanned++
			// Skip fully-allocated words wholesale, as a real scan would.
			if m.words[i/64] == ^uint64(0) && i+64 <= m.capacity {
				runStart, runLen = -1, 0
				i += 63
				continue
			}
		}
		if m.isSet(i) {
			runStart, runLen = -1, 0
			continue
		}
		if runStart < 0 {
			runStart = i
		}
		runLen++
		if runLen == n {
			for j := runStart; j < runStart+n; j++ {
				m.set(j)
			}
			m.free -= n
			// The table now caches runs that overlap the allocation; rebuild
			// lazily on next table-path allocation rather than here. Drop
			// stale entries eagerly to keep the invariant simple.
			m.dropOverlapping(runStart, n)
			return runStart, nil
		}
	}
	return 0, fmt.Errorf("%w: want %d, %d free", ErrNoContiguousRun, n, m.free)
}

// dropOverlapping removes cached runs that intersect [start, start+n), and
// re-caches their non-overlapping remainders.
func (m *Map) dropOverlapping(start, n int) {
	end := start + n
	for row := 1; row <= TableRows; row++ {
		kept := m.rows[row][:0]
		var recache []Run
		for _, r := range m.rows[row] {
			rEnd := r.Start + r.Len
			if rEnd <= start || r.Start >= end {
				kept = append(kept, r)
				continue
			}
			if r.Start < start {
				recache = append(recache, Run{Start: r.Start, Len: start - r.Start})
			}
			if rEnd > end {
				recache = append(recache, Run{Start: end, Len: rEnd - end})
			}
		}
		m.rows[row] = kept
		for _, r := range recache {
			m.cacheRun(r)
		}
	}
}

// AllocateAt marks the exact span [start, start+n) allocated, failing with
// ErrAllocated if any fragment in it is already in use. It is used to lay
// out fixed structures (superblocks, the baseline's inode area).
func (m *Map) AllocateAt(start, n int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkSpan(start, n); err != nil {
		return err
	}
	for i := start; i < start+n; i++ {
		if m.isSet(i) {
			return fmt.Errorf("%w: fragment %d", ErrAllocated, i)
		}
	}
	for i := start; i < start+n; i++ {
		m.set(i)
	}
	m.free -= n
	m.dropOverlapping(start, n)
	return nil
}

// Free returns the span [start, start+n) to the free pool. Freeing an
// already-free fragment returns ErrNotAllocated and frees nothing. The
// freed span is coalesced with free neighbours before being cached, because
// "generally, several contiguous blocks and fragments are allocated or freed
// simultaneously" (§4).
func (m *Map) Free(start, n int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkSpan(start, n); err != nil {
		return err
	}
	for i := start; i < start+n; i++ {
		if !m.isSet(i) {
			return fmt.Errorf("%w: fragment %d", ErrNotAllocated, i)
		}
	}
	for i := start; i < start+n; i++ {
		m.clear(i)
	}
	m.free += n
	// Coalesce with adjacent free fragments.
	lo := start
	for lo > 0 && !m.isSet(lo-1) {
		lo--
	}
	hi := start + n
	for hi < m.capacity && !m.isSet(hi) {
		hi++
	}
	// Neighbouring free spans were already cached as separate runs; those
	// entries are now stale. Remove any cached run overlapping the coalesced
	// span, then cache the whole thing.
	m.removeCachedWithin(lo, hi-lo)
	m.cacheRun(Run{Start: lo, Len: hi - lo})
	return nil
}

// removeCachedWithin drops cached runs fully inside [start, start+n).
func (m *Map) removeCachedWithin(start, n int) {
	end := start + n
	for row := 1; row <= TableRows; row++ {
		kept := m.rows[row][:0]
		for _, r := range m.rows[row] {
			if r.Start >= start && r.Start+r.Len <= end {
				continue
			}
			kept = append(kept, r)
		}
		m.rows[row] = kept
	}
}

// Allocated reports whether fragment addr is allocated.
func (m *Map) Allocated(addr int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if addr < 0 || addr >= m.capacity {
		return false
	}
	return m.isSet(addr)
}

// LargestRun returns the length of the longest free run on the disk,
// scanning the bitmap. It is used by callers that fall back to piecewise
// allocation when no single run is long enough.
func (m *Map) LargestRun() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.WordsScanned += int64(len(m.words))
	best, cur := 0, 0
	for i := 0; i < m.capacity; i++ {
		if m.isSet(i) {
			cur = 0
			continue
		}
		cur++
		if cur > best {
			best = cur
		}
	}
	return best
}

// FreeRuns returns all free runs in address order (for fsck and tests).
func (m *Map) FreeRuns() []Run {
	m.mu.Lock()
	defer m.mu.Unlock()
	var runs []Run
	start := -1
	for i := 0; i < m.capacity; i++ {
		if !m.isSet(i) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			runs = append(runs, Run{Start: start, Len: i - start})
			start = -1
		}
	}
	if start >= 0 {
		runs = append(runs, Run{Start: start, Len: m.capacity - start})
	}
	return runs
}

// Bitmap returns a copy of the raw bitmap words (for persistence by the
// disk service and for fsck).
func (m *Map) Bitmap() []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]uint64, len(m.words))
	copy(out, m.words)
	return out
}

// LoadBitmap replaces the bitmap with the given words (persisted state) and
// rebuilds the run table by scanning it, as the paper specifies for
// initialization (§4).
func (m *Map) LoadBitmap(words []uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(words) != len(m.words) {
		return fmt.Errorf("freespace: bitmap has %d words, want %d", len(words), len(m.words))
	}
	copy(m.words, words)
	// Mask bits beyond capacity so popcounts stay honest.
	if rem := m.capacity % 64; rem != 0 {
		m.words[len(m.words)-1] &= (1 << rem) - 1
	}
	allocated := 0
	for _, w := range m.words {
		allocated += bits.OnesCount64(w)
	}
	m.free = m.capacity - allocated
	m.rebuildLocked()
	return nil
}

// CachedRuns returns the number of runs currently cached in the table
// (diagnostic, used by tests).
func (m *Map) CachedRuns() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := 0
	for row := 1; row <= TableRows; row++ {
		total += len(m.rows[row])
	}
	return total
}
