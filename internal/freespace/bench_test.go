package freespace

import (
	"math/rand"
	"testing"
)

// fragment the map: allocate everything, free scattered short runs.
func fragmented(b *testing.B, capacity int) *Map {
	b.Helper()
	m, err := NewMap(capacity)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Allocate(capacity); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for f := 0; f+8 < capacity; f += 24 {
		if err := m.Free(f, 4+rng.Intn(4)); err != nil {
			b.Fatal(err)
		}
	}
	return m
}

func BenchmarkAllocateRunTable(b *testing.B) {
	m := fragmented(b, 256*1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr, err := m.Allocate(4)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := m.Free(addr, 4); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkAllocateFirstFit(b *testing.B) {
	m := fragmented(b, 256*1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr, err := m.AllocateFirstFit(4)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := m.Free(addr, 4); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkFreeCoalesce(b *testing.B) {
	m, err := NewMap(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	addr, err := m.Allocate(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	_ = addr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := (i * 16) % ((1 << 20) - 16)
		if err := m.Free(f, 8); err != nil {
			b.StopTimer()
			// Already free from a previous lap: reallocate and continue.
			if err := m.AllocateAt(f, 8); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			continue
		}
		b.StopTimer()
		if err := m.AllocateAt(f, 8); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}
